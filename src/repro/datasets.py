"""Saving and loading measurement campaigns (the released-data artifact).

The paper publishes its SNMP traces, Autopower measurements, and PSU
sensor export so others can replicate the analyses.  This module is that
release format: one compressed ``.npz`` container holding every trace,
plus a JSON metadata block (router models, inventories, PSU snapshots).
A loaded :class:`CampaignDataset` feeds the §6-§9 analyses exactly like
a live :class:`~repro.network.simulation.SimulationResult` does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, BinaryIO, Dict, List, Optional,
                    Union)

import numpy as np

from repro.telemetry.snmp import PsuSensorExport, RouterTrace
from repro.telemetry.traces import CounterSeries, InterfaceTrace, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.network.simulation import SimulationResult

    #: Anything ``save_campaign`` accepts: a live result or a dataset.
    CampaignLike = Union["SimulationResult", "CampaignDataset"]

#: Container format version (bump on incompatible changes).
FORMAT_VERSION = 1

#: Version stamp embedded in every campaign's ``__meta__`` JSON.
CAMPAIGN_SCHEMA = "repro.datasets.campaign/v1"

_COUNTER_FIELDS = ("rx_octets", "tx_octets", "rx_packets", "tx_packets")


@dataclass
class CampaignDataset:
    """Everything a released campaign contains."""

    snmp: Dict[str, RouterTrace]
    autopower: Dict[str, TimeSeries]
    sensor_exports: List[PsuSensorExport]
    total_power: Optional[TimeSeries] = None
    total_traffic_bps: Optional[TimeSeries] = None

    def routers(self) -> List[str]:
        """Hostnames in the release."""
        return sorted(self.snmp)


def _sanitise(name: str) -> str:
    return name.replace("/", "_")


def save_campaign(result: "CampaignLike",
                  path: "Union[str, Path, BinaryIO]") -> None:
    """Write a campaign (a ``SimulationResult`` or ``CampaignDataset``).

    ``path`` may be a filesystem path or a binary file object.
    """
    arrays: Dict[str, np.ndarray] = {}
    meta = {"schema": CAMPAIGN_SCHEMA, "version": FORMAT_VERSION,
            "routers": {}, "autopower": [], "sensor_exports": []}

    for hostname, trace in result.snmp.items():
        host_key = _sanitise(hostname)
        arrays[f"snmp__{host_key}__t"] = trace.power.timestamps
        arrays[f"snmp__{host_key}__power"] = trace.power.values
        iface_names = []
        for iface_name, iface in trace.interfaces.items():
            iface_key = _sanitise(iface_name)
            iface_names.append(iface_name)
            arrays[f"cnt__{host_key}__{iface_key}__t"] = \
                iface.rx_octets.timestamps
            for fld in _COUNTER_FIELDS:
                series: CounterSeries = getattr(iface, fld)
                arrays[f"cnt__{host_key}__{iface_key}__{fld}"] = \
                    series.counts
        meta["routers"][hostname] = {
            "router_model": trace.router_model,
            "inventory": trace.inventory,
            "interfaces": iface_names,
        }

    for hostname, series in result.autopower.items():
        host_key = _sanitise(hostname)
        arrays[f"ap__{host_key}__t"] = series.timestamps
        arrays[f"ap__{host_key}__power"] = series.values
        meta["autopower"].append(hostname)

    for export in result.sensor_exports:
        meta["sensor_exports"].append({
            "router": export.router,
            "router_model": export.router_model,
            "psu_index": export.psu_index,
            "capacity_w": export.capacity_w,
            "input_w": export.input_w,
            "output_w": export.output_w,
        })

    for attr in ("total_power", "total_traffic_bps"):
        series = getattr(result, attr, None)
        if series is not None and len(series):
            arrays[f"total__{attr}__t"] = series.timestamps
            arrays[f"total__{attr}__v"] = series.values

    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_campaign(path: "Union[str, Path, BinaryIO]",
                  ) -> CampaignDataset:
    """Read a campaign written by :func:`save_campaign`."""
    with np.load(path, allow_pickle=False) as container:
        meta = json.loads(bytes(container["__meta__"]).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported campaign format version "
                f"{meta.get('version')!r}; this library reads "
                f"{FORMAT_VERSION}")

        snmp: Dict[str, RouterTrace] = {}
        for hostname, info in meta["routers"].items():
            host_key = _sanitise(hostname)
            power = TimeSeries(container[f"snmp__{host_key}__t"],
                               container[f"snmp__{host_key}__power"])
            interfaces: Dict[str, InterfaceTrace] = {}
            for iface_name in info["interfaces"]:
                iface_key = _sanitise(iface_name)
                ts = container[f"cnt__{host_key}__{iface_key}__t"]
                counters = {
                    fld: CounterSeries(
                        ts,
                        container[f"cnt__{host_key}__{iface_key}__{fld}"])
                    for fld in _COUNTER_FIELDS
                }
                interfaces[iface_name] = InterfaceTrace(
                    name=iface_name, **counters)
            snmp[hostname] = RouterTrace(
                hostname=hostname,
                router_model=info["router_model"],
                power=power,
                interfaces=interfaces,
                inventory=info["inventory"])

        autopower = {
            hostname: TimeSeries(
                container[f"ap__{_sanitise(hostname)}__t"],
                container[f"ap__{_sanitise(hostname)}__power"])
            for hostname in meta["autopower"]
        }

        exports = [PsuSensorExport(**entry)
                   for entry in meta["sensor_exports"]]

        totals = {}
        for attr in ("total_power", "total_traffic_bps"):
            key_t = f"total__{attr}__t"
            if key_t in container:
                totals[attr] = TimeSeries(container[key_t],
                                          container[f"total__{attr}__v"])
    return CampaignDataset(snmp=snmp, autopower=autopower,
                           sensor_exports=exports,
                           total_power=totals.get("total_power"),
                           total_traffic_bps=totals.get("total_traffic_bps"))
