"""Streaming source adapters: one reading per signal per poll.

The fleet monitor (:mod:`repro.monitor`) tracks the same three power
data sources the paper's §6.2 validation compares offline -- the model
prediction, the PSU/SNMP telemetry, and the Autopower wall measurement
-- plus the §9.4 GREEN efficiency channel.  Each adapter here turns one
of those into a pull-based source the monitor samples during a run.

Two invariants matter:

* **Read-only.**  Adapters never draw from any RNG stream and never
  mutate simulation state, so attaching a monitor leaves a seeded run's
  outputs byte-identical.  In particular they must not call
  ``router.psu_reported_power_w`` or ``psu_sensor_snapshots`` (both
  consume sensor-noise randomness); PSU power is read back from what the
  SNMP collector already recorded, and PSU efficiency is computed from
  the noise-free curve objects.

* **Offline parity.**  :class:`CounterRateModelSource` replicates the
  offline pipeline (``CounterSeries.rates`` ->
  ``validation.trace_to_interfaces`` -> ``predict_trace``) sample by
  sample, so the live model series is bitwise identical to
  ``predict_from_trace`` on the finalized trace at every shared poll
  timestamp -- which is what lets the live drift statistic reproduce the
  offline §6.2 offset exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import PowerModel
from repro.core.prediction import DeployedInterface, predict_trace
from repro.hardware.router import COUNTER_64_WRAP
from repro.telemetry.snmp import SnmpCollector


class SnmpPowerSource:
    """The PSU-reported input power as the SNMP poller recorded it.

    Reads the collector's stored series rather than re-polling the
    router: polling draws sensor noise, and the monitor must observe,
    not perturb.
    """

    def __init__(self, collector: SnmpCollector):
        self.collector = collector

    def sample(self, hostname: str, t_s: float) -> Optional[float]:
        """Latest reported power, or None when the platform reports none."""
        last = self.collector.last_poll_s()
        if last is None or last != t_s:
            return None
        return self.collector.last_power(hostname)


class AutopowerSource:
    """The latest external wall measurement of one metered router.

    A sample is only returned when the meter produced one at exactly the
    requested timestamp; a unit that is powered off (PoP outage) or not
    deployed yields None, which the staleness alert rule turns into a
    missing-data signal.
    """

    def __init__(self, clients: Dict[str, object]):
        self.clients = clients  # hostname -> AutopowerClient

    def sample(self, hostname: str, t_s: float) -> Optional[float]:
        """The unit's latest buffered power reading, if it has one."""
        client = self.clients.get(hostname)
        if client is None:
            return None
        sample = None
        if client.local_buffer:
            sample = client.local_buffer[-1]
        else:
            # Buffer already flushed to the server this tick.
            stored = client.server._samples.get(client.unit_id)
            if stored:
                sample = stored[-1]
        if sample is None or sample.timestamp_s != t_s:
            return None
        return float(sample.power_w)


class PsuEfficiencySource:
    """Per-PSU (P_in, P_out) from the noise-free curve objects.

    This is the GREEN channel (§9.4) without the sensor noise of
    ``psu_sensor_snapshots``: exact output shares under the active
    sharing policy and the exact input power through each instance's
    (possibly aged) efficiency curve.  Spares carrying no load are
    skipped -- a zero-output supply has no meaningful efficiency.
    """

    def __init__(self, routers: Dict[str, object]):
        self.routers = routers  # hostname -> VirtualRouter

    def sample(self, hostname: str, t_s: float,
               ) -> List[Tuple[int, float, float, float]]:
        """``[(psu_index, input_w, output_w, capacity_w), ...]``.

        Only PSUs carrying load are reported; unloaded spares have no
        meaningful efficiency.
        """
        router = self.routers.get(hostname)
        if router is None or not router.powered:
            return []
        device = router.device_power_w()
        group = router.psu_group
        readings: List[Tuple[int, float, float, float]] = []
        for index, (psu, share) in enumerate(
                zip(group.instances, group.output_shares(device))):
            if share == 0.0:
                continue
            readings.append((index, psu.input_power(share), share,
                             psu.capacity_w))
        return readings


class _InterfaceState:
    """Cached per-interface scratch for the live model prediction."""

    __slots__ = ("deployed",)

    def __init__(self, name: str, trx_name: str):
        zeros = (np.zeros(1), np.zeros(1), np.zeros(1), np.zeros(1))
        self.deployed = DeployedInterface(
            name=name, trx_name=trx_name,
            octet_rate_rx=zeros[0], octet_rate_tx=zeros[1],
            packet_rate_rx=zeros[2], packet_rate_tx=zeros[3])


class CounterRateModelSource:
    """Live model prediction driven by the SNMP counter stream (§6.2).

    At each poll it recomputes the newest counter rates from the
    collector's stored tail (two samples per interface) with exactly the
    ``CounterSeries.rates`` arithmetic -- integer deltas, exact 64-bit
    wrap fix-up, reset-to-NaN above half the wrap -- and evaluates the
    power model on the resulting one-sample interface set, ordered by
    interface name like the offline ``trace_to_interfaces``.

    Parity details mirrored from the offline pipeline:

    * no sample until the first-sorted inventory-listed interface has
      two counter polls (offline rates drop the first timestamp);
    * an interface with fewer samples (plugged mid-run) contributes zero
      rates (offline head-pads with zeros);
    * any NaN rate (counter reset) suppresses the whole sample (offline
      masks that grid point for all interfaces).

    ``DeployedInterface`` objects are cached and their one-sample rate
    arrays mutated in place, so the per-poll cost is a handful of scalar
    ops plus one tiny ``predict_trace`` call.
    """

    def __init__(self, collector: SnmpCollector,
                 models: Dict[str, PowerModel]):
        self.collector = collector
        self.models = models  # router model name -> PowerModel
        self._ifaces: Dict[str, Dict[str, _InterfaceState]] = {}
        self._order: Dict[str, List[_InterfaceState]] = {}

    def _interface_list(self, hostname: str,
                        names: List[str],
                        inventory: Dict[str, Optional[str]],
                        ) -> List[_InterfaceState]:
        cache = self._ifaces.setdefault(hostname, {})
        order = self._order.get(hostname)
        # The fast path must also compare transceivers: an in-place
        # module swap keeps the interface name, and serving the cached
        # state would predict with the old module's power curve.
        if order is not None and len(order) == len(names) and all(
                state.deployed.name == name
                and state.deployed.trx_name == inventory[name]
                for state, name in zip(order, names)):
            return order
        order = []
        for name in names:
            state = cache.get(name)
            if state is None or state.deployed.trx_name != inventory[name]:
                state = _InterfaceState(name, inventory[name])
                cache[name] = state
            order.append(state)
        self._order[hostname] = order
        return order

    @staticmethod
    def _rate(slot_ts: List[float], counts: List[int],
              wrap: int) -> Optional[float]:
        """One scalar counter rate; NaN (reset) returns None."""
        delta = int(counts[-1]) - int(counts[-2])
        if delta < 0:
            delta += wrap
        if delta > 0.5 * wrap:
            return None
        dt = slot_ts[-1] - slot_ts[-2]
        return float(delta) / dt

    def sample(self, hostname: str, t_s: float) -> Optional[float]:
        """Model-predicted power from the router's recent SNMP counters."""
        agent = self.collector.agents.get(hostname)
        if agent is None:
            return None
        model = self.models.get(agent.router.model_name)
        if model is None:
            return None
        tails = self.collector.counters_tail(hostname, n=2)
        if not tails:
            return None
        inventory = agent.router.inventory()
        names = [name for name in sorted(tails) if inventory.get(name)]
        if not names:
            # No inventory-listed module anywhere: the router still
            # draws P_base.  Mirror the offline fallback grid (first
            # counter trace, from its second poll on).
            first = tails[sorted(tails)[0]]
            if len(first[0]) < 2 or first[0][-1] != t_s:
                return None
            values = predict_trace(model, [], n_samples=1)
            return float(values[0])
        # The offline rate grid starts at the second poll of the
        # first-sorted listed interface; before that there is no sample.
        first = tails[names[0]]
        if len(first[0]) < 2 or first[0][-1] != t_s:
            return None
        wrap = COUNTER_64_WRAP
        states = self._interface_list(hostname, names, inventory)
        for state in states:
            slot = tails[state.deployed.name]
            ts_col = slot[0]
            deployed = state.deployed
            if len(ts_col) < 2 or ts_col[-1] != t_s:
                # Plugged mid-run: zero rates, like the offline head-pad.
                deployed.octet_rate_rx[0] = 0.0
                deployed.octet_rate_tx[0] = 0.0
                deployed.packet_rate_rx[0] = 0.0
                deployed.packet_rate_tx[0] = 0.0
                continue
            rates = [self._rate(ts_col, slot[i], wrap) for i in (1, 2, 3, 4)]
            if any(r is None for r in rates):
                return None  # counter reset: the offline mask drops it
            deployed.octet_rate_rx[0] = rates[0]
            deployed.octet_rate_tx[0] = rates[1]
            deployed.packet_rate_rx[0] = rates[2]
            deployed.packet_rate_tx[0] = rates[3]
        values = predict_trace(model, [s.deployed for s in states])
        return float(values[0])
