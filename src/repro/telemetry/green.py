"""GREEN-style PSU monitoring: continuous P_in *and* P_out collection.

§9.4 and §10 of the paper call out a gap in today's practice: standard
monitoring exports only the PSU's input power, so conversion efficiency
cannot be tracked over time -- the paper had to fall back to a one-time
sensor snapshot, and hopes the IETF GREEN working group fixes this.

This module is that fix, implemented: a collector that polls both power
values of every PSU on a schedule, builds per-supply efficiency series,
and flags supplies whose efficiency drifts (aging) or sits below a
floor -- the longitudinal analysis §9.4 says the community needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import units
from repro.core.regression import LinearFit, linear_fit
from repro.hardware.router import VirtualRouter
from repro.telemetry.traces import TimeSeries


@dataclass(frozen=True)
class PsuKey:
    """Identifies one supply: router hostname + PSU index."""

    hostname: str
    psu_index: int

    def __str__(self) -> str:
        return f"{self.hostname}/psu{self.psu_index}"


@dataclass
class PsuEfficiencyTrace:
    """The longitudinal record of one PSU."""

    key: PsuKey
    capacity_w: float
    timestamps: List[float] = field(default_factory=list)
    input_w: List[float] = field(default_factory=list)
    output_w: List[float] = field(default_factory=list)

    def efficiency_series(self) -> TimeSeries:
        """Capped efficiency over time (the §9.2 cleaning, continuously)."""
        ts = np.array(self.timestamps)
        inp = np.array(self.input_w)
        out = np.array(self.output_w)
        with np.errstate(divide="ignore", invalid="ignore"):
            eff = np.where(inp > 0, np.minimum(1.0, out / inp), np.nan)
        return TimeSeries(ts, eff)

    def load_series(self) -> TimeSeries:
        """Load fraction over time."""
        ts = np.array(self.timestamps)
        return TimeSeries(ts, np.array(self.output_w) / self.capacity_w)


@dataclass(frozen=True)
class EfficiencyDrift:
    """The fitted efficiency trend of one PSU."""

    key: PsuKey
    per_month: float       # efficiency change per 30 days
    mean_efficiency: float
    fit: LinearFit

    @property
    def degrading(self) -> bool:
        """Whether the supply is measurably losing efficiency."""
        return (self.per_month < -0.002
                and abs(self.fit.slope) > 2 * self.fit.slope_stderr)


def efficiency_drift(trace: PsuEfficiencyTrace) -> Optional[EfficiencyDrift]:
    """Efficiency trend of one PSU trace (None with <3 samples).

    Shared between :class:`GreenCollector` (offline campaigns) and the
    streaming monitor's PSU-health tracker, so both report identical
    trends on identical samples.
    """
    series = trace.efficiency_series().valid()
    if len(series) < 3 or np.ptp(series.timestamps) == 0:
        return None
    fit = linear_fit(series.timestamps, series.values)
    return EfficiencyDrift(
        key=trace.key,
        per_month=fit.slope * 30 * units.SECONDS_PER_DAY,
        mean_efficiency=series.mean(),
        fit=fit)


class GreenCollector:
    """Polls P_in/P_out of every PSU in a fleet on a fixed period."""

    def __init__(self, routers: Sequence[VirtualRouter]):
        self.routers = {r.hostname: r for r in routers}
        self.traces: Dict[PsuKey, PsuEfficiencyTrace] = {}
        for router in routers:
            for index, psu in enumerate(router.psu_group.instances):
                key = PsuKey(router.hostname, index)
                self.traces[key] = PsuEfficiencyTrace(
                    key=key, capacity_w=psu.capacity_w)

    def record(self, timestamp_s: float) -> None:
        """One collection round across the fleet."""
        for hostname, router in self.routers.items():
            if not router.powered:
                continue
            readings = router.psu_sensor_snapshots()
            for index, reading in enumerate(readings):
                trace = self.traces[PsuKey(hostname, index)]
                trace.timestamps.append(timestamp_s)
                trace.input_w.append(reading.input_w)
                trace.output_w.append(reading.output_w)

    # -- analyses -----------------------------------------------------------------

    def drift(self, key: PsuKey) -> Optional[EfficiencyDrift]:
        """Efficiency trend of one PSU (None with <3 samples)."""
        return efficiency_drift(self.traces[key])

    def degrading_psus(self) -> List[EfficiencyDrift]:
        """Supplies with a statistically visible downward trend."""
        out = []
        for key in self.traces:
            drift = self.drift(key)
            if drift is not None and drift.degrading:
                out.append(drift)
        return sorted(out, key=lambda d: d.per_month)

    def below_floor(self, floor: float = 0.75) -> List[PsuKey]:
        """Supplies whose mean efficiency sits below a floor."""
        flagged = []
        for key, trace in self.traces.items():
            series = trace.efficiency_series().valid()
            if len(series) and series.mean() < floor:
                flagged.append(key)
        return sorted(flagged, key=str)

    def fleet_mean_efficiency(self) -> float:
        """Mean capped efficiency across every sample of every PSU."""
        values = []
        for trace in self.traces.values():
            series = trace.efficiency_series().valid()
            values.extend(series.values.tolist())
        return float(np.mean(values)) if values else float("nan")
