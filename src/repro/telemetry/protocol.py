"""The Autopower wire protocol: framed, sequenced, idempotent.

The real Autopower talks gRPC over a client-initiated connection.  This
module reproduces the properties that matter when the transport is
unreliable, without the dependency:

* **length-prefixed framing** over a byte stream (frames survive
  arbitrary segmentation -- a decoder accumulates partial reads);
* **typed messages** with a JSON payload (register, measurement chunk,
  chunk acknowledgement, control poll);
* **sequence numbers with server-side deduplication**, so a client that
  never saw an ack can retransmit blindly: uploads are at-least-once on
  the wire but exactly-once in the database.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.lab.power_meter import PowerSample
from repro.telemetry.autopower import AutopowerServer

#: Frame header: 4-byte big-endian payload length.
_HEADER = struct.Struct(">I")

#: Upper bound on a frame's payload (matches gRPC's default 4 MiB).
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Version stamp carried by every encoded frame.
WIRE_SCHEMA = "repro.telemetry.wire/v1"


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegisterRequest:
    """A unit announcing itself after boot."""

    unit_id: str
    TYPE = "register"


@dataclass(frozen=True)
class RegisterReply:
    """Server response to a registration."""

    unit_id: str
    accepted: bool
    TYPE = "register-reply"


@dataclass(frozen=True)
class MeasurementChunk:
    """A sequenced batch of samples."""

    unit_id: str
    seq: int
    timestamps: Tuple[float, ...]
    power_w: Tuple[float, ...]
    TYPE = "chunk"

    def __post_init__(self):
        if len(self.timestamps) != len(self.power_w):
            raise ValueError(
                f"chunk arrays differ in length: {len(self.timestamps)} "
                f"vs {len(self.power_w)}")

    @classmethod
    def from_samples(cls, unit_id: str, seq: int,
                     samples: List[PowerSample]) -> "MeasurementChunk":
        """Pack buffered samples into one chunk message."""
        return cls(unit_id=unit_id, seq=seq,
                   timestamps=tuple(s.timestamp_s for s in samples),
                   power_w=tuple(s.power_w for s in samples))

    def samples(self) -> List[PowerSample]:
        """Back to sample objects."""
        return [PowerSample(timestamp_s=t, power_w=p)
                for t, p in zip(self.timestamps, self.power_w)]


@dataclass(frozen=True)
class ChunkAck:
    """Acknowledgement of one chunk (or of its deduplicated duplicate)."""

    unit_id: str
    seq: int
    accepted: int
    duplicate: bool = False
    TYPE = "chunk-ack"


@dataclass(frozen=True)
class ControlPoll:
    """Client polling the server's measure/pause toggle."""

    unit_id: str
    TYPE = "control-poll"


@dataclass(frozen=True)
class ControlReply:
    """The server's toggle state."""

    unit_id: str
    measure: bool
    TYPE = "control-reply"


Message = Union[RegisterRequest, RegisterReply, MeasurementChunk,
                ChunkAck, ControlPoll, ControlReply]

_TYPES = {cls.TYPE: cls for cls in (
    RegisterRequest, RegisterReply, MeasurementChunk, ChunkAck,
    ControlPoll, ControlReply)}


# ---------------------------------------------------------------------------
# Encoding & framing
# ---------------------------------------------------------------------------


def encode(message: Message) -> bytes:
    """Message -> framed bytes."""
    payload = dict(message.__dict__)
    payload["_type"] = message.TYPE
    payload["_schema"] = WIRE_SCHEMA
    body = json.dumps(payload).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large: {len(body)} bytes")
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Message:
    """One frame's payload -> message."""
    data = json.loads(body.decode("utf-8"))
    schema = data.pop("_schema", None)
    if schema is not None and schema != WIRE_SCHEMA:
        raise ValueError(f"unsupported wire schema {schema!r}; this "
                         f"library speaks {WIRE_SCHEMA!r}")
    type_tag = data.pop("_type", None)
    cls = _TYPES.get(type_tag)
    if cls is None:
        raise ValueError(f"unknown message type {type_tag!r}")
    for key in ("timestamps", "power_w"):
        if key in data:
            data[key] = tuple(data[key])
    return cls(**data)


class FrameDecoder:
    """Accumulates arbitrary byte segments and yields complete messages.

    TCP gives no message boundaries; ``feed`` any received bytes and
    collect whatever complete frames they finish.
    """

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Message]:
        """Add received bytes; return all now-complete messages."""
        self._buffer.extend(data)
        messages: List[Message] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ValueError(f"oversized frame announced: {length}")
            if len(self._buffer) < _HEADER.size + length:
                break
            body = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            messages.append(decode_payload(body))
        return messages

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# Server-side dispatch with deduplication
# ---------------------------------------------------------------------------


class ProtocolServer:
    """Wraps an :class:`AutopowerServer` behind the wire protocol.

    Tracks the highest contiguous sequence number per unit; a
    retransmitted chunk is acknowledged but not stored twice.
    """

    def __init__(self, server: Optional[AutopowerServer] = None):
        self.server = server if server is not None else AutopowerServer()
        self._last_seq: Dict[str, int] = {}

    def handle(self, message: Message) -> Message:
        """Dispatch one decoded message; returns the reply message."""
        if isinstance(message, RegisterRequest):
            self.server.register(message.unit_id)
            self._last_seq.setdefault(message.unit_id, -1)
            return RegisterReply(unit_id=message.unit_id, accepted=True)
        if isinstance(message, ControlPoll):
            return ControlReply(
                unit_id=message.unit_id,
                measure=self.server.should_measure(message.unit_id))
        if isinstance(message, MeasurementChunk):
            last = self._last_seq.get(message.unit_id, -1)
            if message.seq <= last:
                return ChunkAck(unit_id=message.unit_id, seq=message.seq,
                                accepted=0, duplicate=True)
            accepted = self.server.receive_chunk(message.unit_id,
                                                 message.samples())
            self._last_seq[message.unit_id] = message.seq
            return ChunkAck(unit_id=message.unit_id, seq=message.seq,
                            accepted=accepted)
        raise TypeError(
            f"server cannot handle {type(message).__name__} messages")

    def handle_bytes(self, data: bytes,
                     decoder: Optional[FrameDecoder] = None) -> bytes:
        """Byte-level entry point: frames in, framed replies out."""
        decoder = decoder if decoder is not None else FrameDecoder()
        replies = bytearray()
        for message in decoder.feed(data):
            replies.extend(encode(self.handle(message)))
        return bytes(replies)
