"""Autopower: external power measurement units for production routers (§6.1).

An Autopower unit is a Raspberry Pi plus a two-channel MCP39F511N power
meter: channel 0 monitors a router PSU feed, channel 1 powers the Pi
itself (no extra power plug needed in the PoP).  The original system's
operational properties are reproduced faithfully, because §6's comparisons
depend on them:

* **client-initiated** connections only (works behind NAT) -- the client
  pushes to the server, the server never contacts the client;
* **store and forward** -- samples buffer locally and upload in chunks
  when the network allows, so connectivity outages lose nothing;
* **boot resilience** -- measurement restarts automatically after a power
  failure; only the outage window itself is missing from the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import units
from repro.hardware.router import VirtualRouter
from repro.lab.power_meter import PowerMeter, PowerSample
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.telemetry.traces import TimeSeries

#: Idle power draw of the Raspberry Pi 4 measurement computer itself.
RASPBERRY_PI_POWER_W = 4.5

_log = get_logger("telemetry.autopower")

M_DEPLOYS = metrics.counter(
    "netpower_autopower_deploys_total",
    "Autopower units installed on routers")
M_SAMPLES = metrics.counter(
    "netpower_autopower_samples_total",
    "Power samples taken by a unit's meter", labels=("unit",))
M_CHUNKS_SENT = metrics.counter(
    "netpower_autopower_chunks_sent_total",
    "Sample chunks pushed to the server", labels=("unit",))
M_SAMPLES_UPLOADED = metrics.counter(
    "netpower_autopower_samples_uploaded_total",
    "Samples accepted by the server", labels=("unit",))
M_UPLOAD_OFFLINE = metrics.counter(
    "netpower_autopower_upload_offline_total",
    "Upload attempts skipped because the uplink was down (retried later)",
    labels=("unit",))
M_BOOTS = metrics.counter(
    "netpower_autopower_boots_total",
    "Unit boots (initial power-on plus post-outage restarts)",
    labels=("unit",))
M_BACKLOG = metrics.gauge(
    "netpower_autopower_backlog_samples",
    "Samples buffered locally, awaiting upload", labels=("unit",))
M_OUTAGE_WINDOWS = metrics.gauge(
    "netpower_autopower_outage_windows",
    "Scheduled outage windows, by kind", labels=("unit", "kind"))
M_OUTAGE_SECONDS = metrics.gauge(
    "netpower_autopower_outage_seconds",
    "Total scheduled outage duration, by kind", labels=("unit", "kind"))
M_SERVER_CHUNKS = metrics.counter(
    "netpower_autopower_server_chunks_received_total",
    "Chunks the collection server accepted")
M_SERVER_SAMPLES = metrics.counter(
    "netpower_autopower_server_samples_received_total",
    "Samples the collection server accepted")


@dataclass
class OutageWindow:
    """A half-open interval during which something is unavailable."""

    start_s: float
    end_s: float

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError(
                f"outage must end after it starts "
                f"({self.start_s} .. {self.end_s})")

    def contains(self, t: float) -> bool:
        """Whether ``t`` falls inside the window."""
        return self.start_s <= t < self.end_s


class Transport:
    """The unit's uplink to the server, with injectable outages."""

    def __init__(self, outages: Optional[Sequence[OutageWindow]] = None):
        self.outages = list(outages or [])

    def add_outage(self, start_s: float, end_s: float) -> None:
        """Schedule a connectivity outage."""
        self.outages.append(OutageWindow(start_s, end_s))
        unit = getattr(self, "unit_id", "")
        M_OUTAGE_WINDOWS.labels(unit=unit, kind="uplink").set(
            len(self.outages))
        M_OUTAGE_SECONDS.labels(unit=unit, kind="uplink").set(
            sum(w.end_s - w.start_s for w in self.outages))

    def available(self, t: float) -> bool:
        """Whether the uplink works at time ``t``."""
        return not any(w.contains(t) for w in self.outages)


class AutopowerServer:
    """The collection server: receives chunks, serves downloads.

    Mirrors the original's gRPC service surface: clients push measurement
    chunks; operators list units, start/stop measurements, and download
    data (the web interface of the paper's Fig. 7).
    """

    def __init__(self):
        self._samples: Dict[str, List[PowerSample]] = {}
        self._measuring: Dict[str, bool] = {}

    def register(self, unit_id: str) -> None:
        """A unit announcing itself (client-initiated)."""
        self._samples.setdefault(unit_id, [])
        self._measuring.setdefault(unit_id, True)

    def receive_chunk(self, unit_id: str,
                      samples: Sequence[PowerSample]) -> int:
        """Accept a chunk of samples from a unit; returns count accepted."""
        if unit_id not in self._samples:
            self.register(unit_id)
        self._samples[unit_id].extend(samples)
        M_SERVER_CHUNKS.inc()
        M_SERVER_SAMPLES.inc(len(samples))
        return len(samples)

    def units(self) -> List[str]:
        """Known measurement units."""
        return sorted(self._samples)

    def should_measure(self, unit_id: str) -> bool:
        """Server-side measurement toggle polled by clients."""
        return self._measuring.get(unit_id, True)

    def start_measurement(self, unit_id: str) -> None:
        """Operator action: start measuring on a unit."""
        self._measuring[unit_id] = True

    def stop_measurement(self, unit_id: str) -> None:
        """Operator action: stop measuring on a unit."""
        self._measuring[unit_id] = False

    def download(self, unit_id: str) -> TimeSeries:
        """The unit's uploaded power data, ordered by time."""
        samples = sorted(self._samples.get(unit_id, []),
                         key=lambda s: s.timestamp_s)
        if not samples:
            return TimeSeries(np.array([]), np.array([]))
        ts = np.array([s.timestamp_s for s in samples])
        vs = np.array([s.power_w for s in samples])
        keep = np.concatenate([[True], np.diff(ts) > 0])
        return TimeSeries(ts[keep], vs[keep])

    def status_page(self) -> str:
        """The Fig. 7 web interface, as text: units, state, last reading.

        The original offers a browser UI to "conveniently start/stop
        measurements or download the power data"; this renders the same
        overview for terminals and logs.
        """
        lines = [f"{'unit':28s} {'state':10s} {'samples':>8s} "
                 f"{'last reading':>14s}"]
        for unit_id in self.units():
            samples = self._samples[unit_id]
            state = ("measuring" if self.should_measure(unit_id)
                     else "stopped")
            if samples:
                last = max(samples, key=lambda s: s.timestamp_s)
                reading = f"{last.power_w:8.1f} W"
            else:
                reading = "-"
            lines.append(f"{unit_id:28s} {state:10s} {len(samples):>8d} "
                         f"{reading:>14s}")
        return "\n".join(lines)


class AutopowerClient:
    """One deployed measurement unit.

    Parameters
    ----------
    unit_id:
        Identifier of the unit (hostname of the Pi).
    router:
        The router whose feed is plugged through meter channel 0.
    server:
        The collection server (reached through ``transport``).
    transport:
        Uplink with optional outage windows.
    sample_period_s:
        Meter sampling period; the paper's deployment used 0.5 s.
    upload_period_s:
        How often the client tries to flush its local buffer.
    rng:
        Randomness for the meter error model.
    """

    #: Maximum samples per upload chunk (bounded gRPC message size).
    CHUNK_SIZE = 4096

    def __init__(self, unit_id: str, router: VirtualRouter,
                 server: AutopowerServer,
                 transport: Optional[Transport] = None,
                 sample_period_s: float = units.AUTOPOWER_SAMPLE_PERIOD_S,
                 upload_period_s: float = 60.0,
                 rng: Optional[np.random.Generator] = None):
        self.unit_id = unit_id
        self.router = router
        self.server = server
        self.transport = transport if transport is not None else Transport()
        # Let the transport label its outage metrics with the unit id.
        if not hasattr(self.transport, "unit_id"):
            self.transport.unit_id = unit_id
        self.sample_period_s = sample_period_s
        self.upload_period_s = upload_period_s
        self.meter = PowerMeter(rng=rng)
        self.meter.attach(router.wall_power_w, channel=0)
        self.meter.attach(lambda: RASPBERRY_PI_POWER_W, channel=1)
        #: Locally stored, not-yet-uploaded samples (survives outages).
        self.local_buffer: List[PowerSample] = []
        self.power_outages: List[OutageWindow] = []
        self._registered = False
        self._last_upload_s = -np.inf
        #: Last toggle state heard from the server; holds through
        #: uplink outages (units default to measuring until told not to).
        self._measuring_cached = True
        self.boots = 1
        M_BOOTS.labels(unit=unit_id).inc()

    # -- failure injection ------------------------------------------------------

    def add_power_outage(self, start_s: float, end_s: float) -> None:
        """Schedule a PoP power failure affecting the unit itself."""
        self.power_outages.append(OutageWindow(start_s, end_s))
        M_OUTAGE_WINDOWS.labels(unit=self.unit_id, kind="power").set(
            len(self.power_outages))
        M_OUTAGE_SECONDS.labels(unit=self.unit_id, kind="power").set(
            sum(w.end_s - w.start_s for w in self.power_outages))

    def _powered(self, t: float) -> bool:
        return not any(w.contains(t) for w in self.power_outages)

    # -- the measurement loop ------------------------------------------------------

    def tick(self, timestamp_s: float) -> None:
        """One scheduler tick: sample if due and possible, then maybe upload.

        The caller (the network simulation) invokes this at the sampling
        cadence; a unit without power silently skips the tick and resumes
        on the next one -- the paper's "start on boot" behaviour.
        """
        if not self._powered(timestamp_s):
            return
        was_down = any(w.end_s <= timestamp_s for w in self.power_outages
                       if w.end_s > timestamp_s - self.sample_period_s)
        if was_down:
            self.boots += 1
            M_BOOTS.labels(unit=self.unit_id).inc()
            _log.debug("unit rebooted after power outage",
                       extra={"unit": self.unit_id,
                              "timestamp_s": timestamp_s})
        if self._measuring(timestamp_s):
            self.local_buffer.append(
                self.meter.read(timestamp_s, channel=0))
            M_SAMPLES.labels(unit=self.unit_id).inc()
            M_BACKLOG.labels(unit=self.unit_id).set(len(self.local_buffer))
        if timestamp_s - self._last_upload_s >= self.upload_period_s:
            self.try_upload(timestamp_s)

    def _measuring(self, timestamp_s: float) -> bool:
        # The client polls the server's toggle when reachable; when not,
        # it keeps its last known state (default: measuring).
        if self.transport.available(timestamp_s):
            self._measuring_cached = self.server.should_measure(
                self.unit_id)
        return self._measuring_cached

    def try_upload(self, timestamp_s: float) -> int:
        """Flush buffered samples to the server if the uplink is up.

        Returns the number of samples uploaded (0 when offline).  An
        offline attempt does not advance the upload clock, so the first
        due tick after an outage drains the backlog immediately instead
        of waiting out another ``upload_period_s``.
        """
        if not self.transport.available(timestamp_s):
            M_UPLOAD_OFFLINE.labels(unit=self.unit_id).inc()
            return 0
        self._last_upload_s = timestamp_s
        if not self._registered:
            self.server.register(self.unit_id)
            self._registered = True
        uploaded = 0
        while self.local_buffer:
            chunk = self.local_buffer[: self.CHUNK_SIZE]
            accepted = self.server.receive_chunk(self.unit_id, chunk)
            del self.local_buffer[: accepted]
            M_CHUNKS_SENT.labels(unit=self.unit_id).inc()
            uploaded += accepted
        if uploaded:
            M_SAMPLES_UPLOADED.labels(unit=self.unit_id).inc(uploaded)
            M_BACKLOG.labels(unit=self.unit_id).set(len(self.local_buffer))
        return uploaded


def deploy_unit(router: VirtualRouter, server: AutopowerServer,
                rng: Optional[np.random.Generator] = None,
                sample_period_s: float = units.AUTOPOWER_SAMPLE_PERIOD_S,
                transport: Optional[Transport] = None,
                ) -> AutopowerClient:
    """Install an Autopower unit on a router's power feed.

    Installing the meter requires briefly unplugging each PSU (§6.2 notes
    this power cycle alone changed one router's self-reported power), so
    the router is power-cycled here.  A custom ``transport`` (e.g. one
    with scheduled uplink outages) is forwarded to the client.
    """
    router.power_cycle()
    M_DEPLOYS.inc()
    _log.info("autopower unit deployed",
              extra={"router": router.hostname})
    return AutopowerClient(
        unit_id=f"autopower-{router.hostname}",
        router=router, server=server, rng=rng,
        sample_period_s=sample_period_s, transport=transport)
