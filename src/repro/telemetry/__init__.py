"""Telemetry: the paper's two in-network measurement channels.

* :mod:`repro.telemetry.snmp` -- 5-minute PSU power polls and 64-bit
  interface counters, plus the one-time PSU sensor export of §9.2;
* :mod:`repro.telemetry.autopower` -- the external measurement units
  (Raspberry Pi + MCP39F511N) with store-and-forward resilience;
* :mod:`repro.telemetry.traces` -- the time-series containers both use.
"""

from repro.telemetry.traces import (
    CounterSeries,
    InterfaceTrace,
    TimeSeries,
)
from repro.telemetry.snmp import (
    IF_HC_IN_OCTETS,
    IF_HC_OUT_OCTETS,
    IF_HC_IN_PKTS,
    IF_HC_OUT_PKTS,
    PsuInventoryEntry,
    PsuSensorExport,
    RouterTrace,
    SnmpAgent,
    SnmpCollector,
)
from repro.telemetry.green import (
    EfficiencyDrift,
    GreenCollector,
    PsuEfficiencyTrace,
    PsuKey,
    efficiency_drift,
)
from repro.telemetry.protocol import (
    ChunkAck,
    ControlPoll,
    ControlReply,
    FrameDecoder,
    MeasurementChunk,
    ProtocolServer,
    RegisterReply,
    RegisterRequest,
    encode,
)
from repro.telemetry.autopower import (
    RASPBERRY_PI_POWER_W,
    AutopowerClient,
    AutopowerServer,
    OutageWindow,
    Transport,
    deploy_unit,
)

__all__ = [
    "ChunkAck",
    "ControlPoll",
    "ControlReply",
    "FrameDecoder",
    "MeasurementChunk",
    "ProtocolServer",
    "RegisterReply",
    "RegisterRequest",
    "encode",
    "EfficiencyDrift",
    "GreenCollector",
    "PsuEfficiencyTrace",
    "PsuKey",
    "efficiency_drift",
    "CounterSeries",
    "InterfaceTrace",
    "TimeSeries",
    "IF_HC_IN_OCTETS",
    "IF_HC_OUT_OCTETS",
    "IF_HC_IN_PKTS",
    "IF_HC_OUT_PKTS",
    "PsuInventoryEntry",
    "PsuSensorExport",
    "RouterTrace",
    "SnmpAgent",
    "SnmpCollector",
    "AutopowerClient",
    "AutopowerServer",
    "OutageWindow",
    "Transport",
    "RASPBERRY_PI_POWER_W",
    "deploy_unit",
]
