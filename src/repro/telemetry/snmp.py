"""SNMP-style telemetry collection from deployed routers.

Reproduces the shape of the paper's 10-month Switch dataset: every poll
period (5 minutes), each router exports its PSU-reported input power (if
the platform reports one at all, §6.2) and its 64-bit interface counters.
A one-time *sensor export* additionally captures each PSU's input and
output power -- the snapshot §9.2 relies on, since the periodic traces
only contain ``P_in``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.hardware.psu import PsuSensorReading
from repro.hardware.router import Counters, PsuSensorQuirk, VirtualRouter
from repro.obs import profile
from repro.telemetry.traces import CounterSeries, InterfaceTrace, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.engine import FleetState

#: MIB object names used in record dictionaries, for readability.
IF_HC_IN_OCTETS = "ifHCInOctets"
IF_HC_OUT_OCTETS = "ifHCOutOctets"
IF_HC_IN_PKTS = "ifHCInUcastPkts"
IF_HC_OUT_PKTS = "ifHCOutUcastPkts"


@dataclass(frozen=True)
class PsuInventoryEntry:
    """One PSU as it appears in the router's hardware inventory (§9.2)."""

    router: str
    psu_index: int
    model: str
    capacity_w: float


@dataclass(frozen=True)
class PsuSensorExport:
    """One-time environment-sensor snapshot of a PSU (§9.2).

    ``input_w``/``output_w`` are raw sensor values; they are noisy and can
    imply an efficiency above 100 %, which analyses must cap.
    """

    router: str
    router_model: str
    psu_index: int
    capacity_w: float
    input_w: float
    output_w: float

    @property
    def load_fraction(self) -> float:
        """Reported output power over capacity."""
        return self.output_w / self.capacity_w

    @property
    def efficiency(self) -> float:
        """Implied efficiency, capped at 100 % like the paper does."""
        if self.input_w <= 0:
            return 0.0
        return min(1.0, self.output_w / self.input_w)


class SnmpAgent:
    """The SNMP view of one router: what a poller can read."""

    def __init__(self, router: VirtualRouter):
        self.router = router

    @property
    def hostname(self) -> str:
        """sysName of the device."""
        return self.router.hostname

    def poll_power(self, true_in: Optional[float] = None) -> Optional[float]:
        """PSU-reported total input power, or None if unsupported.

        ``true_in`` optionally supplies the router's already-computed wall
        power so the sensor model does not recompute it (used by the
        vectorized engine, whose columnar state holds the fresh value).
        """
        return self.router.psu_reported_power_w(true_in=true_in)

    def poll_counters(self) -> Dict[str, Counters]:
        """Current 64-bit counters per interface."""
        return self.router.interface_counters()

    def psu_inventory(self) -> List[PsuInventoryEntry]:
        """PSU models and capacities from the hardware inventory."""
        return [
            PsuInventoryEntry(router=self.hostname, psu_index=i,
                              model=psu.model.name,
                              capacity_w=psu.capacity_w)
            for i, psu in enumerate(self.router.psu_group.instances)
        ]

    def sensor_export(self) -> List[PsuSensorExport]:
        """One-time P_in/P_out snapshot of every PSU (§9.2)."""
        readings = self.router.psu_sensor_snapshots()
        return [
            PsuSensorExport(
                router=self.hostname,
                router_model=self.router.model_name,
                psu_index=i,
                capacity_w=self.router.psu_group.instances[i].capacity_w,
                input_w=reading.input_w,
                output_w=reading.output_w,
            )
            for i, reading in enumerate(readings)
        ]


@dataclass
class RouterTrace:
    """Everything collected for one router over a monitoring campaign."""

    hostname: str
    router_model: str
    power: TimeSeries
    interfaces: Dict[str, InterfaceTrace] = field(default_factory=dict)
    inventory: Dict[str, Optional[str]] = field(default_factory=dict)

    def median_power_w(self) -> float:
        """Median of the PSU-reported power (the Table 1 statistic)."""
        return self.power.median()

    def total_octet_rate(self) -> TimeSeries:
        """Sum of rx+tx octet rates over all recorded interfaces."""
        if not self.interfaces:
            return TimeSeries(np.array([]), np.array([]))
        acc: Optional[np.ndarray] = None
        ts: Optional[np.ndarray] = None
        for iface in self.interfaces.values():
            rx, tx = iface.octet_rates()
            if len(rx) == 0:
                continue
            total = np.nan_to_num(rx.values) + np.nan_to_num(tx.values)
            if acc is None:
                acc, ts = total, rx.timestamps
            else:
                n = min(len(acc), len(total))
                acc = acc[:n] + total[:n]
                ts = ts[:n]
        if acc is None:
            return TimeSeries(np.array([]), np.array([]))
        return TimeSeries(ts, acc)


class SnmpCollector:
    """Polls a set of routers on a fixed period and accumulates traces.

    Counter collection is restricted to interfaces that have a module
    plugged (empty cages never count traffic), and can be further limited
    to a subset of routers via ``detailed_hosts`` to keep month-scale
    campaigns at fleet size tractable -- power is always recorded for
    every router.
    """

    def __init__(self, routers: Sequence[VirtualRouter],
                 detailed_hosts: Optional[Iterable[str]] = None):
        self.agents = {r.hostname: SnmpAgent(r) for r in routers}
        if detailed_hosts is None:
            self.detailed_hosts = set(self.agents)
        else:
            self.detailed_hosts = set(detailed_hosts)
            unknown = self.detailed_hosts - set(self.agents)
            if unknown:
                raise ValueError(
                    f"detailed hosts not in the fleet: {sorted(unknown)}")
        self._timestamps: List[float] = []
        self._power: Dict[str, List[float]] = {h: [] for h in self.agents}
        # host -> iface -> (ts, rx_oct, tx_oct, rx_pkt, tx_pkt) lists
        self._counters: Dict[str, Dict[str, List[List]]] = {
            h: {} for h in self.detailed_hosts}
        # Per-fleet-order poll rows for record_vector(), built lazily on
        # the first columnar poll (see _vector_rows_for).
        self._vector_key: Optional[Tuple[str, ...]] = None
        self._vector_rows: List[Tuple[List[float], Optional[VirtualRouter],
                                      bool]] = []

    def record(self, timestamp_s: float,
               true_power_by_host: Optional[Dict[str, float]] = None) -> None:
        """Take one poll of the whole fleet.

        ``true_power_by_host`` optionally maps hostnames to their current
        true wall power; hosts present in it skip the per-router wall
        recomputation (see :meth:`SnmpAgent.poll_power`).
        """
        with profile.region("kernel.snmp_poll"):
            self._timestamps.append(timestamp_s)
            for hostname, agent in self.agents.items():
                true_in = (None if true_power_by_host is None
                           else true_power_by_host.get(hostname))
                power = agent.poll_power(true_in=true_in)
                self._power[hostname].append(
                    power if power is not None else np.nan)
                if hostname not in self.detailed_hosts:
                    continue
                store = self._counters[hostname]
                ports_by_name = {p.name: p for p in agent.router.ports}
                for iface_name, counters in agent.poll_counters().items():
                    port = ports_by_name[iface_name]
                    if not port.plugged:
                        continue
                    slot = store.setdefault(iface_name,
                                            [[], [], [], [], []])
                    slot[0].append(timestamp_s)
                    slot[1].append(counters.rx_octets)
                    slot[2].append(counters.tx_octets)
                    slot[3].append(counters.rx_packets)
                    slot[4].append(counters.tx_packets)

    def _vector_rows_for(self, hostnames: Sequence[str],
                         ) -> List[Tuple[str, List[float],
                                         Optional[VirtualRouter], bool]]:
        """Poll rows aligned with the engine's fleet order.

        One ``(hostname, power samples, router, detailed)`` row per
        hostname; the router slot is ``None`` for platforms whose PSU
        sensor is absent (§6.2) -- those rows always record NaN without
        touching the router object, mirroring the early-None in
        :meth:`VirtualRouter.psu_reported_power_w`.
        """
        key = tuple(hostnames)
        if self._vector_key != key:
            rows: List[Tuple[str, List[float],
                             Optional[VirtualRouter], bool]] = []
            for hostname in key:
                router = self.agents[hostname].router
                absent = router.spec.psu_quirk == PsuSensorQuirk.ABSENT
                rows.append((hostname, self._power[hostname],
                             None if absent else router,
                             hostname in self.detailed_hosts))
            self._vector_key = key
            self._vector_rows = rows
        return self._vector_rows

    def record_vector(self, timestamp_s: float, hostnames: Sequence[str],
                      true_power_w: np.ndarray,
                      state: "FleetState") -> None:
        """Columnar-engine poll: byte-identical records, no object detour.

        The vectorized engine hands its per-router wall-power column and
        its :class:`~repro.network.engine.FleetState` straight in, so a
        poll skips the fleet-wide ``dict(zip(...))`` power map, the
        object-counter write-back for detailed hosts, and the per-poll
        interface-dict rebuild that :meth:`record` pays; detailed-host
        counters are read directly off the columnar arrays
        (:meth:`~repro.network.engine.FleetState.counters_view`).
        Sensor-noise draws still come one router at a time from each
        router's private generator -- the streams are per-router, so the
        recorded values match :meth:`record` bit for bit.  ``hostnames``
        must be the fleet order the power column is indexed by.
        """
        with profile.region("kernel.snmp_poll"):
            self._timestamps.append(timestamp_s)
            wall = true_power_w.tolist()
            for (hostname, samples, router, detailed), true_in in zip(
                    self._vector_rows_for(hostnames), wall):
                if router is None or not router.powered:
                    samples.append(np.nan)
                else:
                    power = router.psu_reported_power_w(true_in=true_in)
                    samples.append(power if power is not None else np.nan)
                if not detailed:
                    continue
                rx_oct, tx_oct, rx_pkt, tx_pkt = state.counters_view(
                    hostname)
                store = self._counters[hostname]
                ports = self.agents[hostname].router.ports
                for k, port in enumerate(ports):
                    if not port.plugged:
                        continue
                    slot = store.setdefault(port.name,
                                            [[], [], [], [], []])
                    slot[0].append(timestamp_s)
                    slot[1].append(int(rx_oct[k]))
                    slot[2].append(int(tx_oct[k]))
                    slot[3].append(int(rx_pkt[k]))
                    slot[4].append(int(tx_pkt[k]))

    def last_poll_s(self) -> Optional[float]:
        """Timestamp of the most recent poll, or None before the first."""
        if not self._timestamps:
            return None
        return self._timestamps[-1]

    def last_power(self, hostname: str) -> Optional[float]:
        """Most recent PSU-reported power for one router.

        None if the router has never been polled or its platform does not
        report a power value (the NaN case, §6.2).
        """
        samples = self._power.get(hostname)
        if not samples:
            return None
        value = samples[-1]
        if value is None or np.isnan(value):
            return None
        return float(value)

    def counters_tail(self, hostname: str, n: int = 2,
                      ) -> Dict[str, List[List]]:
        """Last ``n`` raw counter samples per interface of one router.

        Returns ``iface -> [ts, rx_oct, tx_oct, rx_pkt, tx_pkt]`` where
        each entry is the tail of the recorded lists -- exactly what a
        streaming consumer (the live model-prediction source) needs to
        recompute the most recent counter rate without holding the whole
        campaign in memory twice.
        """
        store = self._counters.get(hostname, {})
        return {iface: [column[-n:] for column in slot]
                for iface, slot in store.items()}

    def finalize(self) -> Dict[str, RouterTrace]:
        """Build immutable traces from everything recorded so far."""
        ts = np.array(self._timestamps, dtype=float)
        traces: Dict[str, RouterTrace] = {}
        for hostname, agent in self.agents.items():
            power = TimeSeries(ts, np.array(self._power[hostname]))
            interfaces: Dict[str, InterfaceTrace] = {}
            for iface_name, slot in self._counters.get(hostname, {}).items():
                iface_ts = np.array(slot[0], dtype=float)
                interfaces[iface_name] = InterfaceTrace(
                    name=iface_name,
                    rx_octets=CounterSeries(iface_ts, np.array(slot[1])),
                    tx_octets=CounterSeries(iface_ts, np.array(slot[2])),
                    rx_packets=CounterSeries(iface_ts, np.array(slot[3])),
                    tx_packets=CounterSeries(iface_ts, np.array(slot[4])),
                )
            traces[hostname] = RouterTrace(
                hostname=hostname,
                router_model=agent.router.model_name,
                power=power,
                interfaces=interfaces,
                inventory=agent.router.inventory(),
            )
        return traces

    def sensor_exports(self) -> List[PsuSensorExport]:
        """One-time P_in/P_out snapshot across the fleet (§9.2)."""
        exports: List[PsuSensorExport] = []
        for agent in self.agents.values():
            exports.extend(agent.sensor_export())
        return exports
