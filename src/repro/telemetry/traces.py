"""Time-series containers for power and counter traces.

Everything §6-§9 consumes is a time series: 5-minute SNMP power polls,
0.5-second Autopower samples, 64-bit interface counters.  This module
provides the two containers used throughout -- :class:`TimeSeries` for
sampled values (with gaps as NaN) and :class:`CounterSeries` for
monotonically increasing counters (with wrap and reset handling) -- plus
the alignment/averaging operations the paper's plots rely on (e.g. the
30-minute averaging of Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.hardware.router import COUNTER_64_WRAP


@dataclass
class TimeSeries:
    """A sampled scalar signal: timestamps (s) and values, gaps as NaN."""

    timestamps: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.timestamps.shape != self.values.shape:
            raise ValueError(
                f"timestamps and values differ in shape: "
                f"{self.timestamps.shape} vs {self.values.shape}")
        if self.timestamps.ndim != 1:
            raise ValueError("series must be one-dimensional")
        if len(self.timestamps) > 1 and np.any(np.diff(self.timestamps) <= 0):
            raise ValueError("timestamps must be strictly increasing")

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def duration_s(self) -> float:
        """Span between first and last sample."""
        if len(self) < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def valid(self) -> "TimeSeries":
        """The series restricted to non-NaN samples."""
        mask = ~np.isnan(self.values)
        return TimeSeries(self.timestamps[mask], self.values[mask])

    def mean(self) -> float:
        """NaN-ignoring mean (NaN for empty/all-NaN series, no warning)."""
        finite = self.values[~np.isnan(self.values)]
        if len(finite) == 0:
            return float("nan")
        return float(np.mean(finite))

    def median(self) -> float:
        """NaN-ignoring median (the paper's Table 1 statistic).

        NaN for an empty or all-NaN series (platforms that report no
        power), without numpy's all-NaN warning.
        """
        finite = self.values[~np.isnan(self.values)]
        if len(finite) == 0:
            return float("nan")
        return float(np.median(finite))

    def std(self) -> float:
        """NaN-ignoring standard deviation (NaN when nothing is finite)."""
        finite = self.values[~np.isnan(self.values)]
        if len(finite) == 0:
            return float("nan")
        return float(np.std(finite))

    def slice(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with ``t0 <= t < t1``."""
        mask = (self.timestamps >= t0) & (self.timestamps < t1)
        return TimeSeries(self.timestamps[mask], self.values[mask])

    def resample(self, period_s: float,
                 t0: Optional[float] = None) -> "TimeSeries":
        """Bin-average onto a regular grid (e.g. Fig. 4's 30-min averages).

        Bins with no valid samples yield NaN; bin timestamps are bin
        centres.
        """
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        if len(self) == 0:
            return TimeSeries(np.array([]), np.array([]))
        start = self.timestamps[0] if t0 is None else t0
        idx = np.floor((self.timestamps - start) / period_s).astype(int)
        keep = idx >= 0
        idx = idx[keep]
        vals = self.values[keep]
        n_bins = int(idx.max()) + 1 if len(idx) else 0
        sums = np.zeros(n_bins)
        counts = np.zeros(n_bins)
        finite = ~np.isnan(vals)
        np.add.at(sums, idx[finite], vals[finite])
        np.add.at(counts, idx[finite], 1.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / counts, np.nan)
        centres = start + (np.arange(n_bins) + 0.5) * period_s
        return TimeSeries(centres, means)

    def align_to(self, grid: np.ndarray,
                 max_gap_s: Optional[float] = None) -> "TimeSeries":
        """Linear interpolation onto an arbitrary time grid.

        Points farther than ``max_gap_s`` from any source sample become
        NaN (so measurement outages stay visible after alignment).
        """
        grid = np.asarray(grid, dtype=float)
        src = self.valid()
        if len(src) == 0:
            return TimeSeries(grid, np.full(len(grid), np.nan))
        interp = np.interp(grid, src.timestamps, src.values,
                           left=np.nan, right=np.nan)
        if max_gap_s is not None and len(src) > 0:
            nearest_idx = np.searchsorted(src.timestamps, grid)
            nearest_idx = np.clip(nearest_idx, 1, len(src) - 1)
            gap = np.minimum(
                np.abs(grid - src.timestamps[nearest_idx - 1]),
                np.abs(src.timestamps[nearest_idx] - grid))
            interp = np.where(gap <= max_gap_s, interp, np.nan)
        return TimeSeries(grid, interp)

    def shifted(self, offset: float) -> "TimeSeries":
        """The same series with a constant added to every value."""
        return TimeSeries(self.timestamps.copy(), self.values + offset)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[float, float]]) -> "TimeSeries":
        """Build from an iterable of (timestamp, value) pairs."""
        pairs = list(pairs)
        if not pairs:
            return cls(np.array([]), np.array([]))
        ts = np.array([p[0] for p in pairs], dtype=float)
        vs = np.array([p[1] for p in pairs], dtype=float)
        return cls(ts, vs)


@dataclass
class CounterSeries:
    """A sampled 64-bit monotone counter (e.g. ``ifHCInOctets``)."""

    timestamps: np.ndarray
    counts: np.ndarray
    wrap: int = COUNTER_64_WRAP

    def __post_init__(self):
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        self.counts = np.asarray(self.counts, dtype=np.uint64)
        if self.timestamps.shape != self.counts.shape:
            raise ValueError("timestamps and counts differ in shape")

    def __len__(self) -> int:
        return len(self.timestamps)

    def rates(self, reset_threshold: float = 0.5) -> TimeSeries:
        """Per-interval rates (units/s) from counter deltas.

        A decreasing counter is either a 64-bit wrap (delta recovered
        modulo ``wrap``) or a device reboot.  Deltas larger than
        ``reset_threshold * wrap`` after wrap-correction are treated as
        resets and yield NaN -- the standard SNMP poller heuristic.

        The rate for interval ``(t_i, t_{i+1}]`` is stamped at ``t_{i+1}``;
        the first timestamp has no rate and is dropped.
        """
        if len(self) < 2:
            return TimeSeries(np.array([]), np.array([]))
        if self.wrap == COUNTER_64_WRAP and int(self.counts.max()) < 2 ** 63:
            # Fast path: values fit in int64, diff vectorises; the rare
            # negative delta (wrap or reset) is fixed up exactly below.
            deltas = np.diff(self.counts.astype(np.int64)).astype(float)
        else:
            ints = [int(c) for c in self.counts]
            deltas = np.array([b - a for a, b in zip(ints, ints[1:])],
                              dtype=float)
        negative = deltas < 0
        if np.any(negative):
            for i in np.flatnonzero(negative):
                exact = (int(self.counts[i + 1]) - int(self.counts[i])
                         + self.wrap)
                deltas[i] = float(exact)
        deltas[deltas > reset_threshold * self.wrap] = np.nan
        dt = np.diff(self.timestamps)
        return TimeSeries(self.timestamps[1:], deltas / dt)


@dataclass
class InterfaceTrace:
    """The counter traces of one interface over a collection run."""

    name: str
    rx_octets: CounterSeries
    tx_octets: CounterSeries
    rx_packets: CounterSeries
    tx_packets: CounterSeries

    def octet_rates(self) -> Tuple[TimeSeries, TimeSeries]:
        """(rx, tx) octet rates in bytes/s."""
        return self.rx_octets.rates(), self.tx_octets.rates()

    def packet_rates(self) -> Tuple[TimeSeries, TimeSeries]:
        """(rx, tx) packet rates in packets/s."""
        return self.rx_packets.rates(), self.tx_packets.rates()

    def is_active(self) -> bool:
        """Whether the interface ever carried traffic during the trace."""
        rx, tx = self.packet_rates()
        total = np.nansum(rx.values) + np.nansum(tx.values)
        return bool(total > 0)
