#!/usr/bin/env python
"""Diff two bench reports; fail on perf regression (the CI sentinel).

Usage::

    python scripts/bench_compare.py CURRENT.json BASELINE.json
                                    [--tolerance 0.15]
                                    [--min-kernel-ms 5.0]

Compares per-case ``ms_per_step`` / ``ms_per_step_per_1k_routers`` and
the per-kernel cumulative milliseconds from the v6 ``profile`` blocks
(see :func:`repro.bench.compare_reports`).  Exit codes: 0 when no
metric regressed beyond the tolerance, 1 on regression, 2 on unreadable
reports or a schema mismatch (a layout change invalidates the
comparison -- regenerate the baseline).
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import (  # noqa: E402
    DEFAULT_MIN_KERNEL_MS,
    DEFAULT_TOLERANCE,
    compare_reports,
    render_comparison,
)


def _load(path: Path, label: str) -> dict:
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        print(f"cannot read {label} report {path}: {exc}",
              file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(report, dict):
        print(f"{label} report {path} is not a JSON object",
              file=sys.stderr)
        raise SystemExit(2)
    return report


def main(argv=None) -> int:
    """Compare two reports; exit 0 / 1 / 2 (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="python scripts/bench_compare.py",
        description="Diff a bench report against a baseline; "
                    "exit 1 on regression.")
    parser.add_argument("current", type=Path,
                        help="freshly generated bench report")
    parser.add_argument("baseline", type=Path,
                        help="baseline bench report to diff against")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="fractional slowdown tolerated "
                             "(default: %(default)s)")
    parser.add_argument("--min-kernel-ms", type=float,
                        default=DEFAULT_MIN_KERNEL_MS,
                        help="skip kernels whose baseline total is below "
                             "this (default: %(default)s)")
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        print("--tolerance must be positive", file=sys.stderr)
        return 2
    current = _load(args.current, "current")
    baseline = _load(args.baseline, "baseline")
    try:
        comparison = compare_reports(current, baseline,
                                     tolerance=args.tolerance,
                                     min_kernel_ms=args.min_kernel_ms)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    render_comparison(comparison, sys.stdout)
    return 1 if comparison["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
