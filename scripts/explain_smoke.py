#!/usr/bin/env python
"""CI smoke test for the energy attribution ledger + explain document.

Usage::

    python scripts/explain_smoke.py [--preset synth-200] [--steps 50]
                                    [--seed 7]

Runs the same seeded simulation with the energy ledger attached on both
engines and checks the ledger's headline contracts: every step conserves
(conserved components sum to wall power within the 1e-9 W budget per
router per step), the two engines attribute the same joules to the same
components, and the assembled ``repro.explain/v1`` document is
byte-identical across repeated builds.  Exit code 0 on success, 1 with
a diagnosis on stderr otherwise.  Designed to finish well under a
minute on a CI runner: the object engine dominates at ~30 ms/step for
50 steps on the 200-router preset.
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.network import (  # noqa: E402
    FleetTrafficModel,
    NetworkSimulation,
    generate_synth_network,
    synth_config,
)
from repro.network.attribution import (  # noqa: E402
    EXPLAIN_SCHEMA,
    build_explain_document,
    explain_to_json,
)
from repro.obs.ledger import RESIDUAL_TOLERANCE_W  # noqa: E402

STEP_S = 300.0

#: Relative tolerance for object-vs-vector ledger energy agreement
#: (matches the engines' total-power equivalence contract).
AGREEMENT_RTOL = 1e-9


def _build(preset: str, seed: int):
    network = generate_synth_network(
        synth_config(preset), rng=np.random.default_rng(seed))
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(seed + 1))
    sim = NetworkSimulation(
        network, traffic, rng=np.random.default_rng(seed + 2))
    return network, sim


def main(argv: "list[str] | None" = None) -> int:
    """Run the smoke checks; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="synth-200")
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    t0 = time.perf_counter()
    duration_s = args.steps * STEP_S

    results = {}
    networks = {}
    for engine in ("object", "vector"):
        network, sim = _build(args.preset, args.seed)
        t1 = time.perf_counter()
        results[engine] = sim.run(duration_s=duration_s, step_s=STEP_S,
                                  engine=engine, attribution=True)
        networks[engine] = network
        ledger = results[engine].ledger
        print(f"{engine}: {args.steps} steps in "
              f"{time.perf_counter() - t1:.1f}s, max residual "
              f"{ledger.max_residual_w:.2e} W")
        if not ledger.conserved():
            print(f"FAIL: {engine} ledger violates conservation "
                  f"(max residual {ledger.max_residual_w:.2e} W > "
                  f"{RESIDUAL_TOLERANCE_W:.0e} W)", file=sys.stderr)
            return 1

    obj, vec = results["object"].ledger, results["vector"].ledger
    diff = float(np.max(np.abs(obj.energy_j - vec.energy_j)))
    scale = float(np.max(np.abs(obj.energy_j)))
    if diff > AGREEMENT_RTOL * max(scale, 1.0):
        print(f"FAIL: engines attribute different energy "
              f"(max abs diff {diff:.2e} J on scale {scale:.2e} J)",
              file=sys.stderr)
        return 1
    print(f"engine ledgers agree (max abs diff {diff:.2e} J)")

    scenario = {"preset": args.preset, "seed": args.seed,
                "steps": args.steps, "step_s": STEP_S}
    doc1 = explain_to_json(build_explain_document(
        vec, networks["vector"], engine="vector", scenario=scenario))
    doc2 = explain_to_json(build_explain_document(
        vec, networks["vector"], engine="vector", scenario=scenario))
    if doc1 != doc2:
        print("FAIL: explain document is not deterministic",
              file=sys.stderr)
        return 1
    if f'"{EXPLAIN_SCHEMA}"' not in doc1:
        print(f"FAIL: explain document missing schema stamp "
              f"{EXPLAIN_SCHEMA}", file=sys.stderr)
        return 1
    print(f"explain document deterministic ({len(doc1)} bytes, "
          f"schema {EXPLAIN_SCHEMA}); total "
          f"{time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
