#!/usr/bin/env python
"""Validate a ``netpower monitor`` dashboard snapshot against its schema.

Usage::

    python scripts/validate_dashboard.py dashboard.json \
        [docs/schemas/dashboard.schema.json]

Exit code 0 when the snapshot conforms; 1 with the validation errors on
stderr otherwise; 3 when the snapshot's ``schema`` version stamp does
not match the schema document (a version skew, reported before any
field-level errors).  The expected version comes from the schema file,
currently ``repro.monitor.dashboard/v2`` (v1 snapshots therefore exit
3 against the checked-in schema).  Uses the dependency-free subset
validator in
:mod:`repro.monitor.schema`, so the CI container needs no ``jsonschema``
package.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.monitor.schema import validate  # noqa: E402

DEFAULT_SCHEMA = (Path(__file__).resolve().parent.parent
                  / "docs" / "schemas" / "dashboard.schema.json")


def main(argv) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__, file=sys.stderr)
        return 2
    snapshot_path = Path(argv[0])
    schema_path = Path(argv[1]) if len(argv) == 2 else DEFAULT_SCHEMA
    snapshot = json.loads(snapshot_path.read_text())
    schema = json.loads(schema_path.read_text())
    expected = (schema.get("properties", {}).get("schema", {})
                .get("const"))
    declared = snapshot.get("schema") if isinstance(snapshot, dict) \
        else None
    if expected is not None and declared != expected:
        print(f"{snapshot_path}: schema version mismatch: snapshot "
              f"declares {declared!r}, validator expects {expected!r}",
              file=sys.stderr)
        return 3
    errors = validate(snapshot, schema)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"{snapshot_path}: {len(errors)} schema violation(s)",
              file=sys.stderr)
        return 1
    tag = (schema.get("properties", {}).get("schema", {})
           .get("const", "schema"))
    print(f"{snapshot_path}: conforms to {tag}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
