#!/usr/bin/env python
"""CI smoke test for ``netpower serve``.

Usage::

    python scripts/serve_smoke.py [--preset synth-200] [--seed 7]

Boots the server through the real CLI entry point as a subprocess,
then checks the serving contract end to end:

* ``/healthz`` answers 200 while the fleet is still loading and
  ``/readyz`` answers 503 during that window (readiness ordering);
* once ready, every endpoint answers: ``/fleet`` (schema-stamped,
  byte-equal to the ``--snapshot-out`` file), ``/metrics`` (Prometheus
  text), ``/predict`` (bit-identical across repeats, cached tier
  bit-equal to the full tier), ``/whatif`` (a link toggle produces a
  negative delta), and bad inputs get 400s;
* SIGTERM produces a clean exit code 0.

Exit code 0 on success, 1 with a diagnosis on stderr otherwise.
Designed to finish well under a minute on a CI runner: the synth-200
load window is a few seconds and every check is a handful of requests.
"""

import argparse
import json
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(port, path, payload=None):
    """One HTTP exchange; returns (status, body, headers)."""
    url = f"http://127.0.0.1:{port}{path}"
    if payload is None:
        req = urllib.request.Request(url)
    else:
        req = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method="POST")
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", default="synth-200")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--snapshot", default="serve-fleet.json")
    args = parser.parse_args()

    started = time.monotonic()
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--preset", args.preset, "--seed", str(args.seed),
         "--port", "0", "--warmup-steps", "4",
         "--snapshot-out", args.snapshot],
        cwd=REPO, stdout=subprocess.PIPE, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
    try:
        announce = process.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", announce)
        if not match:
            fail(f"no listen announcement, got {announce!r}")
        port = int(match.group(1))

        # Readiness ordering: the socket answers before the fleet loads.
        status, _, _ = request(port, "/healthz")
        if status != 200:
            fail(f"/healthz {status} while loading")
        status, _, _ = request(port, "/readyz")
        if status != 503:
            fail(f"/readyz {status} during the load window (want 503)")
        while True:
            status, body, _ = request(port, "/readyz")
            if status == 200:
                break
            if time.monotonic() - started > 120:
                fail(f"not ready after 120 s: {body!r}")
            time.sleep(0.5)

        status, fleet_body, _ = request(port, "/fleet")
        if status != 200:
            fail(f"/fleet {status}")
        fleet = json.loads(fleet_body)
        if fleet.get("schema") != "repro.serve/v1":
            fail(f"/fleet schema {fleet.get('schema')!r}")
        if not fleet.get("attribution", {}).get("conserved", False):
            fail("fleet warmup attribution did not conserve")
        snapshot = (REPO / args.snapshot).read_bytes()
        if snapshot != fleet_body:
            fail("--snapshot-out file differs from GET /fleet")

        status, text, _ = request(port, "/metrics")
        if status != 200 or b"netpower_serve_ready 1" not in text:
            fail(f"/metrics {status} or ready gauge missing")

        predict = {"routers": [{
            "router_model": fleet["models"][0],
            "interfaces": [{
                "name": "et0", "trx": "QSFP28-100G-DAC",
                "octet_rate_rx": 1.25e9, "octet_rate_tx": 9.0e8,
                "packet_rate_rx": 1.5e5, "packet_rate_tx": 1.2e5}]}]}
        status, first, headers = request(port, "/predict", predict)
        if status != 200:
            fail(f"/predict {status}: {first!r}")
        if headers.get("X-Netpower-Tier") != "full":
            fail(f"first /predict tier {headers.get('X-Netpower-Tier')!r}")
        status, second, headers = request(port, "/predict", predict)
        if second != first:
            fail("repeated /predict bodies differ")
        if headers.get("X-Netpower-Tier") != "cached":
            fail(f"second /predict tier {headers.get('X-Netpower-Tier')!r}")
        status, body, _ = request(port, "/predict", {"routers": "nope"})
        if status != 400:
            fail(f"malformed /predict {status} (want 400)")

        whatif = {"changes": [
            {"hostname": "r000001", "port_index": 0, "admin_up": False}]}
        status, body, _ = request(port, "/whatif", whatif)
        if status != 200:
            fail(f"/whatif {status}: {body!r}")
        delta = json.loads(body)["delta_w"]
        if delta > 0:
            fail(f"admin-down /whatif delta {delta} > 0")
        status, body, _ = request(port, "/whatif",
                                  {"changes": [{"hostname": "ghost",
                                                "port_index": 0,
                                                "admin_up": False}]})
        if status != 400:
            fail(f"unknown-router /whatif {status} (want 400)")

        status, _, _ = request(port, "/no-such-endpoint")
        if status != 404:
            fail(f"unknown path {status} (want 404)")

        process.send_signal(signal.SIGTERM)
        code = process.wait(timeout=30)
        if code != 0:
            fail(f"exit code {code} after SIGTERM (want 0)")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    elapsed = time.monotonic() - started
    print(f"serve_smoke: OK in {elapsed:.1f} s "
          f"({fleet['n_routers']} routers, {len(fleet['models'])} models)")


if __name__ == "__main__":
    main()
