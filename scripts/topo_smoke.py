#!/usr/bin/env python
"""CI smoke test for the synthetic-topology + engine-equivalence stack.

Usage::

    python scripts/topo_smoke.py [--preset synth-1k] [--steps 50] [--seed 7]

Generates a seeded ~1k-router multi-tier fleet twice and checks the
inventory JSON is byte-identical (the generator's determinism contract,
docs/TOPOLOGY.md), then runs the same seeded simulation through both
engines and compares digests: interface counters must hash identically
(the engines advance them with bit-equal arithmetic) and the
total-power traces must agree to 1e-9 relative.  Exit code 0 on
success, 1 with a diagnosis on stderr otherwise.  Designed to finish
well under a minute on a CI runner: the object engine dominates at
~0.2 s/step for 50 steps.
"""

import argparse
import hashlib
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.network import (  # noqa: E402
    FleetInventory,
    FleetTrafficModel,
    NetworkSimulation,
    generate_synth_network,
    synth_config,
)

STEP_S = 300.0


def _build(preset: str, seed: int):
    network = generate_synth_network(
        synth_config(preset), rng=np.random.default_rng(seed))
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(seed + 1))
    sim = NetworkSimulation(
        network, traffic, rng=np.random.default_rng(seed + 2))
    return network, sim


def _counter_digest(network) -> str:
    """SHA-256 over every interface counter, in sorted host/name order."""
    digest = hashlib.sha256()
    for host in sorted(network.routers):
        for name, ctr in sorted(
                network.routers[host].interface_counters().items()):
            digest.update(f"{host}/{name}:{ctr.rx_octets}:{ctr.tx_octets}"
                          f":{ctr.rx_packets}:{ctr.tx_packets}\n".encode())
    return digest.hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="synth-1k")
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    t0 = time.perf_counter()

    inv1 = FleetInventory.capture(_build(args.preset, args.seed)[0])
    inv2 = FleetInventory.capture(_build(args.preset, args.seed)[0])
    if inv1.to_json() != inv2.to_json():
        print(f"FAIL: {args.preset} seed={args.seed} generated two "
              "different fleets (inventory JSON differs)", file=sys.stderr)
        return 1
    print(f"topology deterministic: {len(inv1)} routers, "
          f"{inv1.total_modules()} modules "
          f"({time.perf_counter() - t0:.1f}s)")

    duration_s = args.steps * STEP_S
    results = {}
    networks = {}
    for engine in ("object", "vector"):
        network, sim = _build(args.preset, args.seed)
        t1 = time.perf_counter()
        results[engine] = sim.run(duration_s=duration_s, step_s=STEP_S,
                                  engine=engine)
        networks[engine] = network
        print(f"{engine}: {args.steps} steps in "
              f"{time.perf_counter() - t1:.1f}s")

    digests = {engine: _counter_digest(network)
               for engine, network in networks.items()}
    if digests["object"] != digests["vector"]:
        print(f"FAIL: counter digests differ: object {digests['object']} "
              f"vs vector {digests['vector']}", file=sys.stderr)
        return 1
    print(f"counter digest match: {digests['vector'][:16]}…")

    p_obj = results["object"].total_power.values
    p_vec = results["vector"].total_power.values
    rel = float(np.max(np.abs(p_vec - p_obj)
                       / np.maximum(np.abs(p_obj), 1e-12)))
    if rel > 1e-9:
        print(f"FAIL: total-power traces diverge (max rel err {rel:.2e})",
              file=sys.stderr)
        return 1
    print(f"power traces agree (max rel err {rel:.2e}); "
          f"total {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
