#!/usr/bin/env python
"""Load-test ``netpower serve`` and record BENCH_serve.json.

Usage::

    python scripts/serve_load.py [--preset synth-1k] [--clients 1000]
                                 [--requests 10] [--distinct 64]
                                 [--seed 7] [--output BENCH_serve.json]
                                 [--history BENCH_history.jsonl]

Boots an in-process :class:`~repro.serve.app.NetpowerServer` on an
ephemeral port, waits for readiness, then runs ``--clients`` concurrent
operator coroutines.  Each operator keeps one persistent HTTP/1.1
connection and polls ``/predict`` with bodies drawn from a shared pool
of ``--distinct`` seeded router queries -- the repeat-poll pattern real
operators produce, which is what exercises the cheap tier.  Every
response body is checked against the first response seen for that pool
entry, so the run doubles as a fleet-scale bit-determinism check
across the cached and full tiers.

The report (schema ``repro.bench.serve/v1``) records wall time,
requests/s, latency percentiles, the tier mix, and batcher shape, and
appends a one-line trajectory entry to the bench history file.
"""

import argparse
import asyncio
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.ioutil import atomic_write_text  # noqa: E402
from repro.serve import NetpowerServer, ServeConfig  # noqa: E402

SERVE_BENCH_SCHEMA = "repro.bench.serve/v1"
HISTORY_SCHEMA = "repro.bench.history/v1"

#: Transceivers the simulated operators report rates for.
_TRX_POOL = ("QSFP28-100G-DAC", "SFP28-25G-DAC", "SFP+-10G-DAC")


def build_query_pool(models, distinct, seed):
    """Seeded pool of /predict bodies the operators draw from."""
    rng = np.random.default_rng(seed)
    pool = []
    for index in range(distinct):
        model = models[index % len(models)]
        n_ifaces = int(rng.integers(0, 9))
        interfaces = []
        for i in range(n_ifaces):
            trx = _TRX_POOL[int(rng.integers(0, len(_TRX_POOL)))]
            interfaces.append({
                "name": f"et{i}",
                "trx": trx,
                "octet_rate_rx": float(rng.uniform(0.0, 2.0e9)),
                "octet_rate_tx": float(rng.uniform(0.0, 2.0e9)),
                "packet_rate_rx": float(rng.uniform(0.0, 2.0e5)),
                "packet_rate_tx": float(rng.uniform(0.0, 2.0e5)),
            })
        body = json.dumps({"routers": [
            {"router_model": model, "interfaces": interfaces}]},
            sort_keys=True).encode()
        pool.append(body)
    return pool


async def http_request(reader, writer, method, path, body=b""):
    """One request on a persistent connection; returns (status, body)."""
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: bench\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode()
    writer.write(head + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    return status, payload


async def operator(client_id, port, pool, n_requests, latencies,
                   canonical, errors):
    """One simulated operator: a keep-alive poll loop over the pool."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for n in range(n_requests):
            slot = (client_id + n) % len(pool)
            started = time.perf_counter()
            status, payload = await http_request(
                reader, writer, "POST", "/predict", pool[slot])
            latencies.append(time.perf_counter() - started)
            if status != 200:
                errors.append(f"client {client_id}: status {status}: "
                              f"{payload[:200]!r}")
                return
            first = canonical.setdefault(slot, payload)
            if payload != first:
                errors.append(f"client {client_id}: pool slot {slot} "
                              f"response bytes changed")
                return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending list."""
    index = min(len(sorted_values) - 1,
                max(0, int(fraction * len(sorted_values))))
    return sorted_values[index]


async def run_load(args):
    config = ServeConfig(preset=args.preset, seed=args.seed, port=0,
                         warmup_steps=args.warmup_steps)
    server = NetpowerServer(config)
    load_started = time.perf_counter()
    await server.start()
    ready = asyncio.ensure_future(server._ready.wait())
    stopped = asyncio.ensure_future(server._stop.wait())
    await asyncio.wait((ready, stopped),
                       return_when=asyncio.FIRST_COMPLETED)
    if server.load_error:
        raise SystemExit(f"fleet load failed: {server.load_error}")
    stopped.cancel()
    load_s = time.perf_counter() - load_started
    assert server.service is not None
    models = sorted(server.service.models)
    n_routers = server.service.fleet_doc["n_routers"]
    pool = build_query_pool(models, args.distinct, args.seed)

    latencies = []
    canonical = {}
    errors = []
    bench_started = time.perf_counter()
    await asyncio.gather(*[
        operator(client_id, server.bound_port, pool, args.requests,
                 latencies, canonical, errors)
        for client_id in range(args.clients)])
    wall_s = time.perf_counter() - bench_started
    await server.shutdown()
    if errors:
        for line in errors[:10]:
            print(f"error: {line}", file=sys.stderr)
        raise SystemExit(f"{len(errors)} operator(s) failed")

    latencies.sort()
    total = len(latencies)
    cache = server.cache
    batcher = server.batcher
    report = {
        "schema": SERVE_BENCH_SCHEMA,
        "generated_by": "python scripts/serve_load.py",
        "preset": args.preset,
        "seed": args.seed,
        "n_routers": n_routers,
        "models": models,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "distinct_queries": args.distinct,
        "load_s": round(load_s, 4),
        "requests": total,
        "wall_s": round(wall_s, 4),
        "requests_per_s": round(total / wall_s, 2),
        "latency_ms": {
            "p50": round(1e3 * percentile(latencies, 0.50), 3),
            "p90": round(1e3 * percentile(latencies, 0.90), 3),
            "p99": round(1e3 * percentile(latencies, 0.99), 3),
            "max": round(1e3 * latencies[-1], 3),
            "mean": round(1e3 * statistics.fmean(latencies), 3),
        },
        "tiers": {
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_entries": len(cache),
            "hit_rate": round(cache.hits / (cache.hits + cache.misses), 4)
            if cache.hits + cache.misses else None,
        },
        "batcher": {
            "flushed_batches": batcher.flushed_batches,
            "flushed_entries": batcher.flushed_entries,
            "mean_batch": round(
                batcher.flushed_entries / batcher.flushed_batches, 2)
            if batcher.flushed_batches else None,
        },
    }
    return report


def append_history(history_path, report):
    """One sorted-key trajectory line alongside the simulation bench."""
    entry = {
        "schema": HISTORY_SCHEMA,
        "seed": report["seed"],
        "serve": {
            "preset": report["preset"],
            "clients": report["clients"],
            "requests_per_s": report["requests_per_s"],
            "p99_ms": report["latency_ms"]["p99"],
            "hit_rate": report["tiers"]["hit_rate"],
        },
    }
    with Path(history_path).open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--preset", default="synth-1k")
    parser.add_argument("--clients", type=int, default=1000)
    parser.add_argument("--requests", type=int, default=10,
                        help="requests per client")
    parser.add_argument("--distinct", type=int, default=64,
                        help="distinct query bodies in the shared pool")
    parser.add_argument("--warmup-steps", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument("--history", default="BENCH_history.jsonl")
    args = parser.parse_args()

    report = asyncio.run(run_load(args))
    atomic_write_text(args.output,
                      json.dumps(report, indent=1, sort_keys=True) + "\n")
    if args.history:
        append_history(args.history, report)
    lat = report["latency_ms"]
    print(f"{report['requests']} requests from {report['clients']} "
          f"clients against {report['n_routers']} routers: "
          f"{report['requests_per_s']:.0f} req/s, "
          f"p50 {lat['p50']:.2f} ms, p99 {lat['p99']:.2f} ms, "
          f"cache hit rate {report['tiers']['hit_rate']}")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
