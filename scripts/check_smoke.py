#!/usr/bin/env python
"""CI smoke test for the incremental ``netpower check`` cache.

Usage::

    python scripts/check_smoke.py [--tree src/] [--out check-report.json]
    [--warm-budget-s 1.0]

Runs the whole-program checker three ways over the same tree -- plain
(no cache), cold (empty cache file), and warm (the cache the cold run
just wrote) -- and verifies the contract from docs/STATIC_ANALYSIS.md:

* all three JSON reports are **byte-identical**: the cache must be
  invisible in the output;
* the cache file itself is byte-stable: a second warm run must not
  rewrite it;
* the warm run finishes inside the time budget (default 1 s) without
  running a single rule -- the point of the cache.

Writes the JSON report to ``--out`` for artifact upload.  Exit code 0
on success (even when the tree has findings: report equality is what
this smoke guards; cleanliness is the check job's own step), 1 with a
diagnosis on stderr otherwise.
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (  # noqa: E402
    check_paths,
    check_paths_cached,
    render_json,
)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="netpower check cache smoke test")
    parser.add_argument("--tree", default="src/",
                        help="directory to check (default src/)")
    parser.add_argument("--out", default="check-report.json",
                        help="where to write the JSON report artifact")
    parser.add_argument("--warm-budget-s", type=float, default=1.0,
                        help="warm-run wall-clock budget in seconds")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as scratch:
        cache_file = Path(scratch) / "check-cache.json"

        plain = render_json(check_paths([args.tree]))

        start = time.perf_counter()
        cold_result, cold_warm = check_paths_cached(
            [args.tree], cache_file=cache_file)
        cold_s = time.perf_counter() - start
        cold = render_json(cold_result)
        cache_bytes = cache_file.read_bytes()

        start = time.perf_counter()
        warm_result, warm_warm = check_paths_cached(
            [args.tree], cache_file=cache_file)
        warm_s = time.perf_counter() - start
        warm = render_json(warm_result)

        failures = []
        if cold_warm:
            failures.append("cold run unexpectedly hit the cache")
        if not warm_warm:
            failures.append("warm run missed the cache")
        if cold != plain:
            failures.append("cold cached report differs from uncached")
        if warm != plain:
            failures.append("warm cached report differs from uncached")
        if cache_file.read_bytes() != cache_bytes:
            failures.append("warm run rewrote the cache file")
        if warm_s > args.warm_budget_s:
            failures.append(
                f"warm run took {warm_s:.3f}s "
                f"(budget {args.warm_budget_s:.3f}s)")

    Path(args.out).write_text(plain)
    print(f"check_smoke: {len(warm_result.paths)} files, "
          f"cold {cold_s:.3f}s, warm {warm_s:.3f}s, "
          f"report {len(plain)} bytes -> {args.out}")
    if failures:
        for failure in failures:
            print(f"check_smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
