"""E2/E3 -- Fig. 2: efficiency trends, ASIC vs router datasheets.

Fig. 2a (redrawn Broadcom data) shows a crisp decline in ASIC W/100G;
Fig. 2b, computed from the datasheet corpus, shows no comparably clear
router-level trend -- the paper's point that component-level progress
does not translate into systems.
"""

import numpy as np
import pytest

from repro.datasheets import (
    asic_trend_fit,
    asic_trend_points,
    efficiency_trend,
    trend_fit,
    trend_spread_by_year,
)


@pytest.fixture(scope="module")
def release_years(corpus):
    return {model: doc.truth.release_year
            for model, doc in corpus.documents.items()
            if doc.truth.release_year is not None}


def test_fig2a_asic_trend(benchmark):
    points = benchmark(asic_trend_points)
    fit = asic_trend_fit()
    print("\nFig. 2a -- Broadcom ASIC efficiency (redrawn)")
    for year, eff in points:
        print(f"  {year}: {eff:5.1f} W/100G")
    print(f"  linear fit: {fit.slope:+.2f} W/100G per year, "
          f"r^2={fit.r_squared:.2f}")
    assert fit.slope < -1.0
    assert fit.r_squared > 0.8


def test_fig2b_datasheet_trend(benchmark, parsed, release_years):
    points = benchmark(efficiency_trend, parsed, release_years)
    fit = trend_fit(points)
    spread = trend_spread_by_year(points)

    print("\nFig. 2b -- datasheet efficiency trend "
          f"({len(points)} routers > 100 Gbps)")
    for year, (mean, std) in sorted(spread.items()):
        print(f"  {year}: {mean:6.1f} ± {std:5.1f} W/100G")
    print(f"  linear fit: {fit.slope:+.2f} W/100G per year, "
          f"r^2={fit.r_squared:.2f}")

    assert len(points) > 50
    # The router-level trend is *not as clear* as the ASIC one: much
    # weaker fit, heavy within-year spread.
    asic = asic_trend_fit()
    assert fit.r_squared < asic.r_squared - 0.2
    mean_within_year_std = np.mean([std for _m, std in spread.values()
                                    if std > 0])
    assert mean_within_year_std > 5.0  # W/100G of scatter per year


def test_fig2b_outliers_excluded(benchmark, parsed, release_years):
    def count_excluded(parsed, years):
        kept = efficiency_trend(parsed, years)
        unfiltered = efficiency_trend(parsed, years,
                                      drop_outliers_above=None)
        return len(unfiltered) - len(kept), len(kept)

    excluded, kept = benchmark(count_excluded, parsed, release_years)
    print(f"\n  outliers excluded from plot: {excluded} (kept {kept})")
    # The paper dropped two ~300 W/100G outliers; the synthetic corpus
    # produces the occasional ancient monster too.
    assert excluded >= 0
