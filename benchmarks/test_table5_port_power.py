"""E13 -- Table 5: per-port-type P_port and P_trx,up averages.

For the link-sleeping evaluation the paper collapses its fitted models
into one (P_port, P_trx,up) pair per port type by averaging.  The bench
rebuilds that table from the session's eight fitted device models and
checks it against the paper's values.
"""

import numpy as np
import pytest

#: Table 5 as printed in the paper.
PAPER_TABLE5 = {
    "SFP": (0.05, 0.005),
    "SFP+": (0.55, -0.016),
    "QSFP28": (0.53, 0.126),
}


def build_table5(all_device_models):
    """Average fitted P_port / P_trx,up per port type across devices."""
    per_type = {}
    for model in all_device_models.values():
        for key, iface in model.interfaces.items():
            per_type.setdefault(key.port_type, []).append(
                (iface.p_port_w.value, iface.p_trx_up_w.value))
    return {
        port_type: (float(np.mean([p for p, _u in values])),
                    float(np.mean([u for _p, u in values])))
        for port_type, values in per_type.items()
    }


def test_table5(benchmark, all_device_models):
    table = benchmark(build_table5, all_device_models)

    print("\nTable 5 -- per-port-type averages from the fitted models")
    print(f"  {'port type':10s} {'P_port':>8s} {'P_trx,up':>9s}"
          f"   {'paper':>16s}")
    for port_type, (p_port, p_up) in sorted(table.items()):
        paper = PAPER_TABLE5.get(port_type)
        paper_str = (f"({paper[0]:.2f}, {paper[1]:+.3f})" if paper else "-")
        print(f"  {port_type:10s} {p_port:8.2f} {p_up:+9.3f}   "
              f"{paper_str:>16s}")

    # The QSFP28 average is dominated by the Table 2/6 100G devices and
    # must land near the paper's 0.53 W.
    assert table["QSFP28"][0] == pytest.approx(0.53, abs=0.35)
    # Ordering: QSFP28 ports cost more than SFP-class ports.
    if "SFP" in table:
        assert table["QSFP28"][0] > table["SFP"][0]
    # P_trx,up magnitudes are fractions of a watt everywhere.
    for port_type, (_p_port, p_up) in table.items():
        assert abs(p_up) < 1.0, port_type


def test_table5_sleeping_inputs_positive(benchmark, all_device_models):
    """The sleeping analysis needs non-degenerate P_port averages."""
    table = benchmark(build_table5, all_device_models)
    for port_type, (p_port, _p_up) in table.items():
        if port_type == "SFP":
            continue  # genuinely near-zero on the N540X's 1G ports
        assert p_port > 0.0, port_type
