"""E5 -- Table 2: lab-derived power models for the four main devices.

The bench reruns the complete NetPowerBench protocol against the virtual
devices and compares every fitted parameter with the paper's published
value (which is this reproduction's hidden ground truth) -- the full
methodology round-trip, through a noisy meter and imperfect PSUs.
"""

import math

import pytest

from repro.core.model import InterfaceClassKey
from repro.hardware import router_spec
from repro.hardware.transceiver import TRANSCEIVER_CATALOG

from conftest import DEVICE_SUITES

TABLE2_DEVICES = ("NCS-55A1-24H", "Nexus9336-FX2", "8201-32FH",
                  "N540X-8Z16G-SYS-A")


def truth_for(device, trx_name, speed):
    spec = router_spec(device)
    module = TRANSCEIVER_CATALOG[trx_name]
    from repro.hardware.transceiver import compatible
    port_type = next(g.port_type for g in spec.port_groups
                     if compatible(g.port_type, module))
    return spec.find_class(port_type, module.reach, speed), port_type


def print_model_table(device, model):
    print(f"\n  {device}: P_base = {model.p_base_w.value:.1f} W "
          f"(truth {router_spec(device).p_base_w:g})")
    header = (f"    {'class':34s} {'P_port':>7s} {'P_in':>6s} {'P_up':>6s} "
              f"{'E_bit':>6s} {'E_pkt':>6s} {'P_off':>6s}")
    print(header)
    for key, m in sorted(model.interfaces.items(), key=lambda kv: str(kv[0])):
        print(f"    {str(key):34s} {m.p_port_w.value:7.2f} "
              f"{m.p_trx_in_w.value:6.2f} {m.p_trx_up_w.value:6.2f} "
              f"{m.e_bit_pj.value:6.1f} {m.e_pkt_nj.value:6.1f} "
              f"{m.p_offset_w.value:6.2f}")


def assert_close(fitted, truth, rel, abs_floor, label):
    """Fitted vs truth within max(rel * |truth|, abs_floor)."""
    tolerance = max(rel * abs(truth), abs_floor)
    assert math.isfinite(fitted), label
    assert abs(fitted - truth) <= tolerance, (
        f"{label}: fitted {fitted:.3f} vs truth {truth:.3f} "
        f"(tolerance {tolerance:.3f})")


@pytest.mark.parametrize("device", TABLE2_DEVICES)
def test_table2_device(benchmark, device, all_device_models):
    model = benchmark(lambda: all_device_models[device])
    print_model_table(device, model)

    spec = router_spec(device)
    assert model.p_base_w.value == pytest.approx(spec.p_base_w,
                                                 rel=0.06, abs=2.5)

    for trx_name, speed in DEVICE_SUITES[device]:
        truth, port_type = truth_for(device, trx_name, speed)
        key = InterfaceClassKey(port_type.value,
                                TRANSCEIVER_CATALOG[trx_name].reach.value,
                                speed)
        fitted = model.interfaces[key]
        label = f"{device}/{key}"
        assert_close(fitted.p_port_w.value, truth.p_port_w,
                     0.3, 0.15, f"{label}.p_port")
        assert_close(fitted.p_trx_in_w.value, truth.p_trx_in_w,
                     0.3, 0.15, f"{label}.p_trx_in")
        assert_close(fitted.p_trx_up_w.value, truth.p_trx_up_w,
                     0.4, 0.20, f"{label}.p_trx_up")
        if speed >= 10:
            # High-speed ports: traffic power is resolvable.
            assert_close(fitted.e_bit_pj.value, truth.e_bit_pj,
                         0.25, 1.0, f"{label}.e_bit")
            assert_close(fitted.e_pkt_nj.value, truth.e_pkt_nj,
                         0.3, 4.0, f"{label}.e_pkt")
            assert_close(fitted.p_offset_w.value, truth.p_offset_w,
                         0.4, 0.15, f"{label}.p_offset")


def test_table2_n540x_dagger(all_device_models, benchmark):
    """Table 2 (d)'s footnote: on 1G ports the traffic terms are too
    small to resolve -- the derivation is *expectedly* imprecise there."""
    model = benchmark(lambda: all_device_models["N540X-8Z16G-SYS-A"])
    fitted = model.interfaces[InterfaceClassKey("SFP", "T", 1)]
    # The absolute dynamic power at 1 Gbps is tiny either way: the error
    # in watts at full line rate stays below half a watt.
    truth_w = 37e-12 * 1e9 + (-48e-9) * 81_274  # e_bit*r + e_pkt*p
    fitted_w = fitted.e_bit_j * 1e9 + fitted.e_pkt_j * 81_274
    print(f"\n  N540X 1G traffic power at line rate: "
          f"fitted {fitted_w:.3f} W vs truth {truth_w:.3f} W")
    assert abs(fitted_w - truth_w) < 0.5
