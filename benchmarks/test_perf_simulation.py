"""Performance benchmark: the vectorized engine vs the object loop.

Not a paper artefact -- this guards the speedup the columnar engine
(:mod:`repro.network.engine`) was built for.  The full-size numbers (the
2x fleet over 10k steps, >=10x) live in ``BENCH_simulation.json`` via
``python -m repro.bench``; this test keeps runtime modest by using the
default 107-router fleet over a few hundred steps and asserting a
conservative floor, so it stays meaningful on slow CI machines.
"""

import time

import numpy as np
import pytest

from repro.network import (
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.obs import metrics

N_STEPS = 300
STEP_S = 300.0


def _timed_run(engine: str):
    network = build_switch_like_network(rng=np.random.default_rng(7))
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(8))
    sim = NetworkSimulation(network, traffic, rng=np.random.default_rng(9))
    start = time.perf_counter()
    result = sim.run(duration_s=N_STEPS * STEP_S, step_s=STEP_S,
                     engine=engine)
    return time.perf_counter() - start, result


class TestEngineSpeedup:
    def test_vector_engine_is_much_faster_and_equivalent(self):
        object_s, object_result = _timed_run("object")
        vector_s, vector_result = _timed_run("vector")
        speedup = object_s / vector_s
        print(f"\nobject {object_s:.2f}s, vector {vector_s:.2f}s "
              f"-> {speedup:.1f}x over {N_STEPS} steps "
              f"({len(object_result.snmp)} routers)")
        np.testing.assert_allclose(object_result.total_power.values,
                                   vector_result.total_power.values,
                                   rtol=1e-9)
        # Measured ~8-15x at this size (init costs amortize further over
        # longer runs); 3x is the never-regress floor.
        assert speedup >= 3.0, (
            f"vectorized engine only {speedup:.1f}x faster "
            f"({object_s:.2f}s vs {vector_s:.2f}s)")


class TestObservabilityOverhead:
    """With no registry installed, instrumentation must cost ~nothing.

    Every instrument call site resolves against the active registry and
    returns a shared no-op when none is installed, so a bare run should
    be indistinguishable from the pre-observability engine.  The bound
    is deliberately loose (machine noise dwarfs the real cost, which is
    one attribute check per call site); the acceptance target is <= 3 %
    and the assertion allows measurement jitter on top of that.
    """

    def test_noop_instrumentation_overhead_is_small(self):
        assert not metrics.enabled(), (
            "a metrics registry leaked into the benchmark process")
        _timed_run("vector")  # warm-up: imports, caches, allocator
        samples = [_timed_run("vector")[0] for _ in range(3)]
        bare_s = min(samples)
        with metrics.use_registry(metrics.MetricsRegistry()):
            observed_samples = [_timed_run("vector")[0] for _ in range(3)]
        observed_s = min(observed_samples)
        print(f"\nvector bare {bare_s:.3f}s, "
              f"with live registry {observed_s:.3f}s "
              f"({100 * (observed_s / bare_s - 1):+.1f} %)")
        # Even a LIVE registry (strictly more work than the no-op path)
        # must stay within 25 % of the bare run at this fleet size.
        assert observed_s <= bare_s * 1.25, (
            f"instrumentation overhead too high: bare {bare_s:.3f}s vs "
            f"instrumented {observed_s:.3f}s")


class TestMonitorOverhead:
    """Continuous monitoring must fit the observability perf budget.

    The rollup store is O(1) amortized per sample with fixed memory, so
    a monitored vector run over the full default fleet must stay within
    the same 25 % envelope the live-registry bound uses.
    """

    def _timed(self, monitored: bool):
        from repro.monitor import FleetMonitor

        network = build_switch_like_network(rng=np.random.default_rng(7))
        traffic = FleetTrafficModel(network, rng=np.random.default_rng(8))
        sim = NetworkSimulation(network, traffic,
                                rng=np.random.default_rng(9))
        for hostname in sorted(network.routers)[:2]:
            sim.deploy_autopower(hostname)
        if monitored:
            sim.add_observer(FleetMonitor())
        start = time.perf_counter()
        sim.run(duration_s=N_STEPS * STEP_S, step_s=STEP_S,
                engine="vector")
        return time.perf_counter() - start

    def test_monitored_run_within_budget(self):
        self._timed(monitored=False)  # warm-up
        bare_s = min(self._timed(monitored=False) for _ in range(3))
        monitored_s = min(self._timed(monitored=True) for _ in range(3))
        print(f"\nvector bare {bare_s:.3f}s, monitored {monitored_s:.3f}s "
              f"({100 * (monitored_s / bare_s - 1):+.1f} %)")
        assert monitored_s <= bare_s * 1.25, (
            f"monitoring overhead too high: bare {bare_s:.3f}s vs "
            f"monitored {monitored_s:.3f}s")
