"""Performance benchmark: the vectorized engine vs the object loop.

Not a paper artefact -- this guards the speedup the columnar engine
(:mod:`repro.network.engine`) was built for.  The full-size numbers (the
2x fleet over 10k steps, >=10x) live in ``BENCH_simulation.json`` via
``python -m repro.bench``; this test keeps runtime modest by using the
default 107-router fleet over a few hundred steps and asserting a
conservative floor, so it stays meaningful on slow CI machines.
"""

import time

import numpy as np
import pytest

from repro.network import (
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.obs import metrics

N_STEPS = 300
STEP_S = 300.0


def _timed_run(engine: str):
    network = build_switch_like_network(rng=np.random.default_rng(7))
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(8))
    sim = NetworkSimulation(network, traffic, rng=np.random.default_rng(9))
    start = time.perf_counter()
    result = sim.run(duration_s=N_STEPS * STEP_S, step_s=STEP_S,
                     engine=engine)
    return time.perf_counter() - start, result


class TestEngineSpeedup:
    def test_vector_engine_is_much_faster_and_equivalent(self):
        object_s, object_result = _timed_run("object")
        vector_s, vector_result = _timed_run("vector")
        speedup = object_s / vector_s
        print(f"\nobject {object_s:.2f}s, vector {vector_s:.2f}s "
              f"-> {speedup:.1f}x over {N_STEPS} steps "
              f"({len(object_result.snmp)} routers)")
        np.testing.assert_allclose(object_result.total_power.values,
                                   vector_result.total_power.values,
                                   rtol=1e-9)
        # Measured ~8-15x at this size (init costs amortize further over
        # longer runs); 3x is the never-regress floor.
        assert speedup >= 3.0, (
            f"vectorized engine only {speedup:.1f}x faster "
            f"({object_s:.2f}s vs {vector_s:.2f}s)")


class TestObservabilityOverhead:
    """With no registry installed, instrumentation must cost ~nothing.

    Every instrument call site resolves against the active registry and
    returns a shared no-op when none is installed, so a bare run should
    be indistinguishable from the pre-observability engine.  The bound
    is deliberately loose (machine noise dwarfs the real cost, which is
    one attribute check per call site); the acceptance target is <= 3 %
    and the assertion allows measurement jitter on top of that.
    """

    def test_noop_instrumentation_overhead_is_small(self):
        assert not metrics.enabled(), (
            "a metrics registry leaked into the benchmark process")
        _timed_run("vector")  # warm-up: imports, caches, allocator
        samples = [_timed_run("vector")[0] for _ in range(3)]
        bare_s = min(samples)
        with metrics.use_registry(metrics.MetricsRegistry()):
            observed_samples = [_timed_run("vector")[0] for _ in range(3)]
        observed_s = min(observed_samples)
        print(f"\nvector bare {bare_s:.3f}s, "
              f"with live registry {observed_s:.3f}s "
              f"({100 * (observed_s / bare_s - 1):+.1f} %)")
        # Even a LIVE registry (strictly more work than the no-op path)
        # must stay within 25 % of the bare run at this fleet size.
        assert observed_s <= bare_s * 1.25, (
            f"instrumentation overhead too high: bare {bare_s:.3f}s vs "
            f"instrumented {observed_s:.3f}s")


class TestMonitorOverhead:
    """Continuous monitoring must fit the observability perf budget.

    The rollup store is O(1) amortized per sample with fixed memory,
    so the honest budget is *absolute overhead per step*: view-host
    sync plus rollup arithmetic, independent of how fast the bare
    engine underneath gets.  A percentage-of-bare envelope (the
    original formulation) turned into a coin flip once the compact
    active-port working set roughly halved the bare step at this fleet
    size -- the same ~0.2 ms/step of monitor work became a noise-sized
    ratio on a shrinking denominator.  Observed cost is ~0.13-0.27
    ms/step on a loaded single-core container, with individual samples
    jittering by 2x either way, so samples are interleaved (bare /
    monitored back to back, min of 4 each) and the never-regress
    ceiling is 1.0 ms/step -- 4x the signal, yet far below what any
    real regression costs (an accidental per-router Python loop in the
    step path is ~3 ms/step even on this 107-router fleet).
    """

    MAX_OVERHEAD_MS_PER_STEP = 1.0

    def _timed(self, monitored: bool):
        from repro.monitor import FleetMonitor

        network = build_switch_like_network(rng=np.random.default_rng(7))
        traffic = FleetTrafficModel(network, rng=np.random.default_rng(8))
        sim = NetworkSimulation(network, traffic,
                                rng=np.random.default_rng(9))
        for hostname in sorted(network.routers)[:2]:
            sim.deploy_autopower(hostname)
        if monitored:
            sim.add_observer(FleetMonitor())
        start = time.perf_counter()
        sim.run(duration_s=N_STEPS * STEP_S, step_s=STEP_S,
                engine="vector")
        return time.perf_counter() - start

    def test_monitored_run_within_budget(self):
        self._timed(monitored=False)  # warm-up
        bare_samples, monitored_samples = [], []
        for _ in range(4):  # interleaved: noise hits both paths alike
            bare_samples.append(self._timed(monitored=False))
            monitored_samples.append(self._timed(monitored=True))
        bare_s = min(bare_samples)
        monitored_s = min(monitored_samples)
        overhead_ms = 1000.0 * max(0.0, monitored_s - bare_s) / N_STEPS
        print(f"\nvector bare {bare_s:.3f}s, monitored {monitored_s:.3f}s "
              f"({overhead_ms:.2f} ms/step overhead)")
        assert overhead_ms <= self.MAX_OVERHEAD_MS_PER_STEP, (
            f"monitoring overhead too high: {overhead_ms:.2f} ms/step "
            f"(bare {bare_s:.3f}s vs monitored {monitored_s:.3f}s over "
            f"{N_STEPS} steps)")


class TestAttributionOverhead:
    """The energy ledger must fit the attribution perf budget.

    Two contracts, mirroring the monitor budget above.  Off: the ledger
    is a ``None`` check per step, so an attribution-off run must be
    indistinguishable from the pre-ledger engine (covered by the bare
    samples here doubling as the off path).  On: the vector engine fills
    an ``(n_routers, n_components)`` buffer from columns it already
    computes, so the acceptance target is <= 15 % over the bare step at
    the ``large`` rung.  Observed is <= ~9 % at ``large`` and ~0.1 % at
    ``xxl``, where the fixed cost amortizes (BENCH_simulation.json
    records the same delta at both rungs); the ceiling is
    1.5x to absorb single-core container jitter, which swings individual
    samples 2x either way -- hence interleaved min-of-4 on both paths.
    A real regression (a per-router Python loop in the vector step) is
    >5x at this fleet size, far above the ceiling.
    """

    MAX_OVERHEAD_RATIO = 1.5
    LADDER_STEPS = 200

    def _timed(self, attribution: bool) -> float:
        from repro import bench

        case = bench.CASES["large"]
        sim = bench._build_simulation(case, seed=7)
        start = time.perf_counter()
        sim.run(duration_s=self.LADDER_STEPS * STEP_S, step_s=STEP_S,
                engine="vector", attribution=attribution)
        return time.perf_counter() - start

    def test_ledger_overhead_within_budget(self):
        self._timed(attribution=True)  # warm-up
        off_samples, on_samples = [], []
        for _ in range(4):  # interleaved: noise hits both paths alike
            off_samples.append(self._timed(attribution=False))
            on_samples.append(self._timed(attribution=True))
        off_s = min(off_samples)
        on_s = min(on_samples)
        print(f"\nvector off {off_s:.3f}s, with ledger {on_s:.3f}s "
              f"({100 * (on_s / off_s - 1):+.1f} %)")
        assert on_s <= off_s * self.MAX_OVERHEAD_RATIO, (
            f"attribution overhead too high: off {off_s:.3f}s vs "
            f"on {on_s:.3f}s over {self.LADDER_STEPS} steps")


class TestProfilerOverhead:
    """The kernel profiler must fit the observability perf budget.

    Off: :func:`repro.obs.profile.region` is one module-global check
    returning a shared no-op context, so an unprofiled run must be
    indistinguishable from the pre-profiler engine (the bare samples
    here double as that contract).  On: each region entry/exit is two
    ``perf_counter`` reads, two list ops, and a dict upsert -- a few
    hundred nanoseconds against step kernels that run for tens of
    microseconds at the ``large`` rung.  The acceptance target is
    <= 10 % over the bare step; observed is ~1-3 %.  The ceiling is
    1.35x to absorb single-core container jitter (individual samples
    swing 2x either way -- hence interleaved min-of-4 on both paths);
    a real regression (e.g. allocating a fresh context manager or
    formatting a name per call) costs well over that.
    """

    MAX_OVERHEAD_RATIO = 1.35
    LADDER_STEPS = 200

    def _timed(self, profiled: bool) -> float:
        from repro import bench
        from repro.obs import profile

        case = bench.CASES["large"]
        sim = bench._build_simulation(case, seed=7)
        profiler = profile.Profiler() if profiled else None
        start = time.perf_counter()
        with profile.use_profiler(profiler):
            sim.run(duration_s=self.LADDER_STEPS * STEP_S, step_s=STEP_S,
                    engine="vector")
        return time.perf_counter() - start

    def test_profiler_overhead_within_budget(self):
        from repro.obs import profile

        assert not profile.enabled(), (
            "a profiler leaked into the benchmark process")
        self._timed(profiled=True)  # warm-up
        off_samples, on_samples = [], []
        for _ in range(4):  # interleaved: noise hits both paths alike
            off_samples.append(self._timed(profiled=False))
            on_samples.append(self._timed(profiled=True))
        off_s = min(off_samples)
        on_s = min(on_samples)
        print(f"\nvector bare {off_s:.3f}s, profiled {on_s:.3f}s "
              f"({100 * (on_s / off_s - 1):+.1f} %)")
        assert on_s <= off_s * self.MAX_OVERHEAD_RATIO, (
            f"profiler overhead too high: bare {off_s:.3f}s vs "
            f"profiled {on_s:.3f}s over {self.LADDER_STEPS} steps")


class TestLadderScaling:
    """The bench ladder's `xl` rung must not scale superlinearly.

    The guarded quantity is ms/step *per 1000 routers*: per-step SNMP
    polling and the object-side hooks are O(routers) with a fixed
    per-router cost, so raw ms/step necessarily grows with fleet size
    and comparing it across rungs would only measure that the `xl`
    fleet is bigger.  What the columnar engine promises is that the
    per-router rate holds (or improves -- wider columns amortize numpy
    dispatch), and the 2x allowance keeps the floor meaningful on noisy
    CI machines.  BENCH_simulation.json records the same normalization
    for every rung (`ms_per_step_per_1k_routers`).
    """

    LADDER_STEPS = 200

    def _ms_per_step(self, case_name: str) -> float:
        from repro import bench

        case = bench.CASES[case_name]
        sim = bench._build_simulation(case, seed=7)
        start = time.perf_counter()
        sim.run(duration_s=self.LADDER_STEPS * STEP_S, step_s=STEP_S,
                engine="vector")
        wall_s = time.perf_counter() - start
        return 1000.0 * wall_s / self.LADDER_STEPS

    def test_xl_per_router_rate_within_2x_of_large(self):
        from repro import bench

        large_ms = self._ms_per_step("large")
        xl_ms = self._ms_per_step("xl")
        large_routers = bench._case_routers(bench.CASES["large"])
        xl_routers = bench._case_routers(bench.CASES["xl"])
        large_norm = large_ms / (large_routers / 1000.0)
        xl_norm = xl_ms / (xl_routers / 1000.0)
        print(f"\nlarge {large_ms:.2f} ms/step ({large_norm:.2f}/1k "
              f"routers), xl {xl_ms:.2f} ms/step ({xl_norm:.2f}/1k)")
        assert xl_norm <= 2.0 * large_norm, (
            f"xl per-router step rate regressed: {xl_norm:.2f} ms/step/1k "
            f"routers vs large {large_norm:.2f} (allowance 2x)")
