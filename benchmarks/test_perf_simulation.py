"""Performance benchmark: the vectorized engine vs the object loop.

Not a paper artefact -- this guards the speedup the columnar engine
(:mod:`repro.network.engine`) was built for.  The full-size numbers (the
2x fleet over 10k steps, >=10x) live in ``BENCH_simulation.json`` via
``python -m repro.bench``; this test keeps runtime modest by using the
default 107-router fleet over a few hundred steps and asserting a
conservative floor, so it stays meaningful on slow CI machines.
"""

import time

import numpy as np
import pytest

from repro.network import (
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)

N_STEPS = 300
STEP_S = 300.0


def _timed_run(engine: str):
    network = build_switch_like_network(rng=np.random.default_rng(7))
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(8))
    sim = NetworkSimulation(network, traffic, rng=np.random.default_rng(9))
    start = time.perf_counter()
    result = sim.run(duration_s=N_STEPS * STEP_S, step_s=STEP_S,
                     engine=engine)
    return time.perf_counter() - start, result


class TestEngineSpeedup:
    def test_vector_engine_is_much_faster_and_equivalent(self):
        object_s, object_result = _timed_run("object")
        vector_s, vector_result = _timed_run("vector")
        speedup = object_s / vector_s
        print(f"\nobject {object_s:.2f}s, vector {vector_s:.2f}s "
              f"-> {speedup:.1f}x over {N_STEPS} steps "
              f"({len(object_result.snmp)} routers)")
        np.testing.assert_allclose(object_result.total_power.values,
                                   vector_result.total_power.values,
                                   rtol=1e-9)
        # Measured ~8-15x at this size (init costs amortize further over
        # longer runs); 3x is the never-regress floor.
        assert speedup >= 3.0, (
            f"vectorized engine only {speedup:.1f}x faster "
            f"({object_s:.2f}s vs {vector_s:.2f}s)")
