"""E15 -- §7: insights on router power.

Four quantified claims:

* "down" does not mean "off" -- P_trx,in dominates optical transceiver
  power and survives admin-down;
* the energy cost of traffic is tiny (forwarding all of Switch's traffic
  costs ~0.02 % of network power);
* transceivers collectively draw ~10 % of network power (≈2.2 kW);
* transceiver power is traffic-independent (E_bit matches across media).
"""

import numpy as np
import pytest

from repro import units
from repro.core.model import InterfaceClassKey
from repro.hardware import TRANSCEIVER_CATALOG


def test_down_does_not_mean_off(benchmark, all_device_models):
    def plug_in_shares():
        shares = []
        for model in all_device_models.values():
            for key, iface in model.interfaces.items():
                if key.reach in ("LR4", "LR", "FR4", "SR"):
                    total = iface.p_trx_total_w
                    if total > 0.5:
                        shares.append(iface.p_trx_in_w.value / total)
        return shares

    shares = benchmark(plug_in_shares)
    print(f"\n§7 -- P_trx,in share of optical transceiver power: "
          f"{100 * np.mean(shares):.0f} % on average "
          f"({len(shares)} fitted optical classes)")
    assert shares, "no optical classes were fitted"
    assert np.mean(shares) > 0.7  # plug-in cost dominates


def test_traffic_energy_cost_is_tiny(benchmark, campaign,
                                     all_device_models):
    """Forwarding the whole network's traffic costs ~0.02 % of power."""
    def traffic_cost():
        # The paper's §7 arithmetic: average 5 pJ/bit + 15 nJ/packet on
        # high-speed ports, applied to the network's total traffic.
        e_bit = units.pj_to_joules(5.0)
        e_pkt = units.nj_to_joules(15.0)
        total_bps = campaign.result.total_traffic_bps.mean() * 2
        total_pps = units.packet_rate(total_bps, 700)
        return e_bit * total_bps + e_pkt * total_pps

    cost_w = benchmark(traffic_cost)
    total_power = campaign.result.total_power.mean()
    share = cost_w / total_power
    print(f"\n  energy cost of all traffic: {cost_w:.1f} W "
          f"= {100 * share:.3f} % of {total_power:.0f} W "
          f"(paper: 5.9 W, 0.02 %)")
    assert share < 0.005  # well under half a percent


def test_paper_headline_arithmetic(benchmark):
    """§7's worked example: 100 Gbps costs 0.6-3.4 W depending on size."""
    def cost(packet_bytes):
        # The paper's back-of-envelope uses p = r / (8 L) without wire
        # overhead; match that convention here.
        rate = units.gbps_to_bps(100)
        return (units.pj_to_joules(5.0) * rate
                + units.nj_to_joules(15.0) * units.packet_rate(
                    rate, packet_bytes, header_bytes=0))

    small = benchmark.pedantic(cost, args=(64,), rounds=10, iterations=10)
    large = cost(1500)
    print(f"\n  100 Gbps of 64 B packets : {small:.2f} W (paper: 3.4 W)")
    print(f"  100 Gbps of 1500 B packets: {large:.2f} W (paper: 0.6 W)")
    assert small == pytest.approx(3.4, abs=0.6)
    assert large == pytest.approx(0.6, abs=0.2)


def test_transceivers_draw_ten_percent(benchmark, campaign):
    def transceiver_power():
        total = 0.0
        for router in campaign.network.routers.values():
            for port in router.ports:
                truth = port.class_truth()
                if truth is not None:
                    total += truth.p_trx_in_w
                    if port.link_up:
                        total += truth.p_trx_up_w
        return total

    trx_w = benchmark(transceiver_power)
    network_w = campaign.result.total_power.mean()
    share = trx_w / network_w
    print(f"\n  total transceiver power: {trx_w:.0f} W "
          f"= {100 * share:.1f} % of network power "
          f"(paper: ≈2.2 kW, ≈10 %)")
    assert 0.04 < share < 0.16


def test_trx_power_independent_of_traffic(benchmark, all_device_models):
    """Table 2 (b)'s evidence: E_bit matches across optical and passive
    media on the same router, so transceiver power is load-independent."""
    def nexus_e_bits():
        model = all_device_models["Nexus9336-FX2"]
        lr = model.interfaces[InterfaceClassKey("QSFP28", "LR", 100)]
        dac = model.interfaces[
            InterfaceClassKey("QSFP28", "Passive DAC", 100)]
        return lr.e_bit_pj.value, dac.e_bit_pj.value

    lr_ebit, dac_ebit = benchmark(nexus_e_bits)
    print(f"\n  Nexus9336 E_bit: LR {lr_ebit:.1f} pJ vs DAC "
          f"{dac_ebit:.1f} pJ (paper: 8 vs 8)")
    assert lr_ebit == pytest.approx(dac_ebit, rel=0.35, abs=1.5)
