"""Benches for the paper-sanctioned extensions this reproduction adds.

Not paper artefacts -- these quantify the follow-ups the paper names:

* §4.3: the modular-router ``P_linecard`` derivation round-trips;
* §9.4: hot-standby PSU consolidation (redundancy kept) vs §9.3.4's
  idealised single-PSU number;
* rate adaptation (the other half of [27]) vs link sleeping on the same
  fleet -- which recovers more, at what operational risk?
"""

import numpy as np
import pytest

from repro import units
from repro.hardware import ModularRouter, chassis_spec
from repro.lab import ModularOrchestrator
from repro.network import FleetTrafficModel
from repro.psu_opt import hot_standby_savings, single_psu_savings
from repro.sleep import (
    Hypnos,
    apply_rate_plan,
    plan_rate_adaptation,
    plan_savings,
)


class TestLinecardExtension:
    def test_p_linecard_round_trip(self, benchmark):
        def derive():
            rng = np.random.default_rng(17)
            dut = ModularRouter(chassis_spec("MOD-CHASSIS-6"), rng=rng,
                                noise_std_w=0.2)
            orchestrator = ModularOrchestrator(dut, rng=rng)
            return orchestrator.derive_linecard(
                "LC-8X100GE", counts=(1, 2, 3, 4), duration_s=15,
                settle_s=2)

        report = benchmark.pedantic(derive, rounds=1, iterations=1)
        print(f"\n§4.3 extension -- P_linecard(LC-8X100GE) = "
              f"{report.p_card.value:.1f} ± {report.p_card.stderr:.1f} W "
              f"(truth 310), r^2 = {report.fit.r_squared:.4f}")
        assert report.p_card.value == pytest.approx(310.0, rel=0.05)
        assert report.fit.r_squared > 0.999


class TestHotStandby:
    def test_standby_vs_idealised_single(self, benchmark, psu_points):
        def both():
            return (single_psu_savings(psu_points),
                    hot_standby_savings(psu_points))

        single, standby = benchmark(both)
        print(f"\n§9.4 extension -- PSU consolidation")
        print(f"  idealised single PSU : {100 * single.fraction:.1f} % "
              f"({single.saved_w:.0f} W)")
        print(f"  hot standby          : {100 * standby.fraction:.1f} % "
              f"({standby.saved_w:.0f} W) -- redundancy kept")
        # Hot standby keeps most of the gain while keeping the spare.
        assert 0 < standby.saved_w < single.saved_w
        assert standby.saved_w > 0.6 * single.saved_w


class TestRateAdaptationVsSleeping:
    @pytest.fixture(scope="class")
    def inputs(self, campaign):
        traffic = FleetTrafficModel(campaign.network,
                                    rng=np.random.default_rng(77),
                                    n_demands=600)
        return campaign.network, traffic.matrix

    def test_comparison(self, benchmark, inputs, campaign):
        network, matrix = inputs
        reference = campaign.result.total_power.mean()

        def both():
            rate_plan = plan_rate_adaptation(network, matrix, headroom=4.0)
            hypnos = Hypnos(network, matrix)
            sleep_plan = hypnos.plan(0, units.days(1))
            sleep_estimate = plan_savings(network, sleep_plan, reference)
            return rate_plan, sleep_estimate

        rate_plan, sleep_estimate = benchmark.pedantic(both, rounds=1,
                                                       iterations=1)
        print("\nExtension -- rate adaptation vs link sleeping")
        print(f"  rate adaptation : {rate_plan.total_saving_w:6.0f} W "
              f"({len(rate_plan.downgraded())} links clocked down, "
              f"topology intact)")
        print(f"  link sleeping   : {sleep_estimate.lower_w:.0f}-"
              f"{sleep_estimate.upper_w:.0f} W "
              f"(redundancy constraint applied)")
        # Both live in the same sub-percent regime; adaptation's floor is
        # guaranteed (no P_trx,up uncertainty) and carries no topology
        # risk -- the operational argument for it.
        assert rate_plan.total_saving_w > 0
        assert rate_plan.total_saving_w < 0.03 * reference

    def test_applying_the_plan_is_measurable(self, benchmark,
                                             small_rate_fleet):
        network, matrix = small_rate_fleet

        def run():
            before = network.total_wall_power_w()
            plan = plan_rate_adaptation(network, matrix, headroom=4.0)
            apply_rate_plan(network, plan)
            after = network.total_wall_power_w()
            return plan, before - after

        plan, measured = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\n  applied rate plan: planned {plan.total_saving_w:.1f} W, "
              f"measured {measured:.1f} W at the wall")
        assert measured == pytest.approx(plan.total_saving_w,
                                         rel=0.3, abs=2.0)


@pytest.fixture(scope="module")
def small_rate_fleet():
    from repro.network import FleetConfig, build_switch_like_network
    config = FleetConfig(
        model_counts=(("8201-32FH", 2), ("NCS-55A1-24H", 3),
                      ("NCS-55A1-24Q6H-SS", 3), ("ASR-920-24SZ-M", 6),
                      ("N540-24Z8Q2C-M", 4)),
        n_regional_pops=3, core_core_links=2)
    network = build_switch_like_network(config,
                                        rng=np.random.default_rng(21))
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(22),
                                n_demands=150)
    return network, traffic.matrix
