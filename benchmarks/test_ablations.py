"""Ablations of the design choices DESIGN.md calls out.

Not paper artefacts -- these quantify *why* the methodology is built the
way it is:

* the P_offset term (dropping it biases low-load predictions);
* the E_pkt term (a bit-rate-only model fails across packet sizes);
* regression over N vs single-point division for P_port;
* the counter-resolution gap between SNMP and Autopower;
* Hypnos' utilisation threshold;
* the "software fix": powering transceivers off on admin-down.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import units
from repro.core import derive_class, derive_power_model, linear_fit
from repro.core.model import InterfaceClassKey
from repro.hardware import VirtualRouter, router_spec
from repro.lab import ExperimentPlan, Orchestrator


@pytest.fixture(scope="module")
def ncs_suite():
    rng = np.random.default_rng(42)
    dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                        noise_std_w=0.25)
    orchestrator = Orchestrator(dut, rng=rng)
    plan = ExperimentPlan(
        trx_name="QSFP28-100G-DAC", n_pairs_values=(1, 2, 4, 6, 8, 10, 12),
        rates_gbps=(2.5, 5, 10, 25, 50, 75, 100),
        packet_sizes=(64, 256, 512, 1024, 1500),
        snake_n_pairs=6, measure_duration_s=30, settle_time_s=5)
    return orchestrator.run_suite(plan)


class TestEpktTermAblation:
    """Without E_pkt, no single E_bit fits all packet sizes."""

    def test_bitrate_only_model_fails_across_sizes(self, benchmark,
                                                   ncs_suite):
        def alpha_spread():
            model, report = derive_class(ncs_suite)
            alphas = {L: fit.slope for L, fit in report.snake_fits.items()}
            implied_e_bit = {L: alpha / (2 * 6) * 1e12  # pJ, 6 pairs
                             for L, alpha in alphas.items()}
            return implied_e_bit

        implied = benchmark(alpha_spread)
        print("\nAblation: E_bit a bit-rate-only model would infer")
        for size, e_bit in sorted(implied.items()):
            print(f"  L={size:5.0f} B: {e_bit:6.1f} pJ/bit")
        # Small packets imply a far larger per-bit cost: the per-packet
        # term is load-bearing (truth: 22 pJ + 58 nJ).
        assert implied[64] > 1.8 * implied[1500]


class TestPoffsetAblation:
    """Without P_offset, the model misses the idle-to-trickle step."""

    def test_offset_is_statistically_present(self, benchmark, ncs_suite):
        def fitted_offset():
            model, _ = derive_class(ncs_suite)
            return model.p_offset_w

        offset = benchmark(fitted_offset)
        print(f"\nAblation: fitted P_offset = {offset.value:.2f} "
              f"± {offset.stderr:.2f} W (truth 0.37)")
        # Dropping the term would leave a systematic per-interface error.
        assert offset.value > 2 * offset.stderr


class TestRegressionOverN:
    """§5.2's choice: regress over N instead of dividing one point."""

    def test_single_point_division_is_noisier(self, benchmark, ncs_suite):
        idle_frames = ncs_suite.of("idle")
        base = ncs_suite.base_power_w

        def both_estimators():
            # (a) the paper's regression over all N.
            x = [f.n_pairs for f in idle_frames]
            y = [f.summary.mean_w for f in idle_frames]
            regression = linear_fit(x, y).slope / 2.0
            # (b) single-point division at the smallest N.
            f0 = idle_frames[0]
            single = (f0.summary.mean_w - base) / (2 * f0.n_pairs)
            return regression, single

        regression, single = benchmark(both_estimators)
        truth = 0.02
        print(f"\nAblation: P_trx,in -- regression {regression:.4f} W vs "
              f"single-point {single:.4f} W (truth {truth})")
        # Regression must not be worse; with a 0.02 W signal under ~0.1 W
        # measurement noise the single-point estimate is hopeless.
        assert abs(regression - truth) <= abs(single - truth) + 0.01


class TestCounterResolution:
    """5-min SNMP vs sub-second Autopower for event localisation."""

    def test_event_timing_resolution(self, benchmark):
        def resolutions():
            return units.SNMP_POLL_PERIOD_S, units.AUTOPOWER_SAMPLE_PERIOD_S

        snmp_s, autopower_s = benchmark(resolutions)
        ratio = snmp_s / autopower_s
        print(f"\nAblation: SNMP poll {snmp_s:.0f} s vs Autopower "
              f"{autopower_s} s -- {ratio:.0f}x finer event timing")
        assert ratio == 600


class TestHypnosThreshold:
    """Sleeping aggressiveness vs the utilisation safety margin."""

    def test_threshold_sweep(self, benchmark, campaign):
        from repro.network import FleetTrafficModel
        from repro.sleep import Hypnos, HypnosConfig

        traffic = FleetTrafficModel(campaign.network,
                                    rng=np.random.default_rng(99),
                                    n_demands=400)

        def sweep():
            counts = {}
            for cap in (0.25, 0.5, 0.9):
                hypnos = Hypnos(campaign.network, traffic.matrix,
                                HypnosConfig(max_utilisation=cap))
                counts[cap] = len(hypnos.plan_window(1.0))
            return counts

        counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print(f"\nAblation: sleepable links vs utilisation cap: {counts}")
        assert counts[0.25] <= counts[0.5] <= counts[0.9]


class TestTemperatureBlindSpot:
    """§4.3: temperature is omitted from the model because it is
    pseudo-constant -- quantify what happens when that breaks."""

    def test_cooling_excursion_creates_offset(self, benchmark):
        rng = np.random.default_rng(61)
        router = VirtualRouter(router_spec("8201-32FH"), rng=rng,
                               noise_std_w=0.0)

        def excursion():
            router.set_ambient(22.0)
            cool = router.wall_power_w()
            router.set_ambient(34.0)
            hot = router.wall_power_w()
            router.set_ambient(22.0)
            return hot - cool

        drift = benchmark(excursion)
        print(f"\nAblation: a 12 °C cooling excursion shifts the wall "
              f"power by {drift:+.0f} W with no configuration change "
              f"-- invisible to the model, like the Fig. 8 OS update")
        assert 20 < drift < 80


class TestSoftwareFixWhatIf:
    """§7's postulate: powering modules off on admin-down is a software
    fix -- what would it save on spare/down transceivers?"""

    def test_fixed_world_savings(self, benchmark, campaign):
        def savings():
            total = 0.0
            for router in campaign.network.routers.values():
                for port in router.ports:
                    if port.plugged and not port.admin_up:
                        truth = port.class_truth()
                        total += truth.p_trx_in_w
            return total

        saved = benchmark(savings)
        network_w = campaign.result.total_power.mean()
        print(f"\nAblation: powering down-port modules off would save "
              f"{saved:.0f} W ({100 * saved / network_w:.2f} %) "
              f"on spares alone")
        assert saved > 0
