"""E7/E8 -- Fig. 4 and Fig. 9: PSU vs Autopower vs model predictions.

For the three instrumented routers the bench reruns the §6.2 three-way
comparison on the campaign data and checks the paper's findings: the
model's shape matches with a constant offset (Fig. 9 is the
offset-corrected zoom), the 8201's PSU telemetry is offset-but-precise,
the NCS's is pseudo-constant, the N540X reports nothing.
"""

import numpy as np
import pytest

from repro import units
from repro.validation import (
    TelemetryVerdict,
    compare_series,
    validate_router,
)

from conftest import VALIDATION_MODELS


@pytest.fixture(scope="module")
def reports(campaign, validation_lab_models):
    out = {}
    for model_name, hostname in campaign.validation_hosts.items():
        out[model_name] = validate_router(
            hostname=hostname,
            trace=campaign.result.snmp[hostname],
            autopower=campaign.result.autopower[hostname],
            model=validation_lab_models[model_name])
    return out


def test_fig4_three_way_comparison(benchmark, campaign,
                                   validation_lab_models):
    hostname = campaign.validation_hosts["8201-32FH"]

    def run():
        return validate_router(
            hostname=hostname,
            trace=campaign.result.snmp[hostname],
            autopower=campaign.result.autopower[hostname],
            model=validation_lab_models["8201-32FH"])

    report = benchmark(run)

    print("\nFig. 4 -- power data source comparison")
    print(f"  {'router':22s} {'PSU verdict':28s} {'model offset':>13s} "
          f"{'model verdict':28s}")
    print(f"  {report.router_model:22s} {report.psu_verdict().value:28s} "
          f"{report.model_stats.offset_w:+10.1f} W  "
          f"{report.model_verdict().value:28s}")
    assert report.model_stats.n_samples > 100


class TestModelFindings:
    """Q3: the model precisely predicts power, with an offset."""

    @pytest.mark.parametrize("model_name", VALIDATION_MODELS)
    def test_model_precise(self, benchmark, reports, model_name):
        report = reports[model_name]
        stats = benchmark(lambda: report.model_stats)
        print(f"\n  {model_name}: model offset {stats.offset_w:+.1f} W, "
              f"residual {stats.residual_std_w:.2f} W, "
              f"corr {stats.correlation:+.2f}")
        assert report.model_verdict() in (
            TelemetryVerdict.TRUSTWORTHY,
            TelemetryVerdict.PRECISE_NOT_ACCURATE)

    @pytest.mark.parametrize("model_name", VALIDATION_MODELS)
    def test_model_offset_same_order_as_paper(self, benchmark, reports,
                                              model_name):
        # Paper: ~9 W on 365 W, ~13 W on 400 W, ~3 W on 48 W -- a few
        # percent of the device's level.
        stats = benchmark(lambda: reports[model_name].model_stats)
        level = reports[model_name].autopower.mean()
        assert abs(stats.offset_w) < 0.15 * level

    def test_fig9_offset_corrected_zoom(self, benchmark, reports):
        report = reports["8201-32FH"]

        def corrected_residual():
            corrected = report.offset_corrected_model()
            return compare_series(corrected, report.autopower)

        stats = benchmark(corrected_residual)
        print(f"\nFig. 9 -- offset-corrected model residual: "
              f"{stats.residual_std_w:.2f} W on a "
              f"{stats.reference_level_w:.0f} W signal")
        assert abs(stats.offset_w) < 1.0
        assert stats.residual_std_w < 0.01 * stats.reference_level_w


class TestPsuFindings:
    """Q2: PSU telemetry cannot be universally trusted."""

    def test_8201_offset_but_precise(self, benchmark, reports):
        stats = benchmark(lambda: reports["8201-32FH"].psu_stats)
        print(f"\n  8201 PSU offset: {stats.offset_w:+.1f} W "
              f"(paper: 15-20 W)")
        assert 10 < stats.offset_w < 25
        assert reports["8201-32FH"].psu_verdict() \
            == TelemetryVerdict.PRECISE_NOT_ACCURATE

    def test_ncs_pseudo_constant(self, benchmark, reports):
        report = benchmark(lambda: reports["NCS-55A1-24H"])
        print(f"\n  NCS PSU verdict: {report.psu_verdict().value}")
        assert report.psu_verdict() == TelemetryVerdict.UNINFORMATIVE

    def test_ncs_jump_on_power_cycle(self, benchmark, campaign):
        # Fig. 4b: the Sep-25 Autopower installation (a power cycle)
        # shifted the NCS's self-reported power.
        hostname = campaign.validation_hosts["NCS-55A1-24H"]
        psu = campaign.result.snmp[hostname].power.valid()
        deploy = units.days(2)

        def levels():
            return (psu.slice(0, deploy).mean(),
                    psu.slice(deploy + 3600, deploy + units.days(4)).mean())

        before, after = benchmark(levels)
        print(f"\n  NCS PSU reading before/after power cycle: "
              f"{before:.1f} -> {after:.1f} W")
        assert abs(after - before) > 0.5

    def test_n540x_absent(self, benchmark, reports):
        verdict = benchmark(reports["N540X-8Z16G-SYS-A"].psu_verdict)
        assert verdict == TelemetryVerdict.ABSENT


class TestEventSignatures:
    """The Fig. 4a annotations: module removal and the flapping fix."""

    def test_unplug_drop_visible_in_all_traces(self, benchmark, campaign,
                                               reports):
        report = reports["8201-32FH"]
        t_event = units.days(17)
        window = units.days(2)
        external = report.autopower

        def measure_drop():
            before = external.slice(t_event - window, t_event).mean()
            after = external.slice(t_event + 1800, t_event + window).mean()
            return before - after

        drop = benchmark(measure_drop)
        print(f"\n  'Oct 9' module removal: -{drop:.1f} W externally "
              f"(paper: ~13 W for a 400G FR4)")
        assert 8 < drop < 25

    def test_model_overreacts_to_flapping_fix(self, benchmark, campaign,
                                              reports):
        # When the interface went admin-down with its module seated, the
        # model (assuming unplugged) predicts a deeper drop than reality.
        report = reports["8201-32FH"]
        t_down, t_up = units.days(20), units.days(23)

        def drop(series):
            before = series.slice(t_down - units.days(2), t_down).mean()
            during = series.slice(t_down + 1800, t_up).mean()
            return before - during

        model_drop, true_drop = benchmark(
            lambda: (drop(report.model_series), drop(report.autopower)))
        print(f"\n  'Oct 22-25' flap fix: model -{model_drop:.1f} W vs "
              f"measured -{true_drop:.1f} W")
        assert model_drop > true_drop + 3.0
