"""E10 -- Fig. 6: PSU efficiency scatter, overall and per router model.

The paper's §9.2 sensor export gives one (load, efficiency) point per
PSU: loads sit at 5-20 %, efficiencies span very good (>95 %) to very
poor (<70 %), with the NCS-55A1-24H faring well (Fig. 6b), the 8201-32FH
poorly (Fig. 6c), and the ASR-920 spanning the whole range (Fig. 6d).
"""

import numpy as np
import pytest

from repro.psu_opt import efficiency_scatter


def test_fig6a_all_psus(benchmark, psu_points):
    loads, effs = benchmark(efficiency_scatter, psu_points)

    print(f"\nFig. 6a -- all {len(loads)} PSUs")
    print(f"  loads      : {loads.min():.1f} - {loads.max():.1f} % "
          f"(mean {loads.mean():.1f} %)")
    print(f"  efficiency : {effs.min():.2f} - {effs.max():.2f} "
          f"(mean {effs.mean():.2f})")

    assert len(loads) > 180          # ~2 PSUs x 107 routers
    assert loads.max() < 25          # all low-load (Fig. 6 x-axis)
    assert np.mean(loads) < 20
    assert effs.min() < 0.70         # very poor exists
    assert effs.max() > 0.93         # very good exists


def test_fig6b_ncs_fares_well(benchmark, psu_points):
    loads, effs = benchmark(efficiency_scatter, psu_points, "NCS-55A1-24H")
    print(f"\nFig. 6b -- NCS-55A1-24H: eff {effs.min():.2f}-{effs.max():.2f}"
          f" median {np.median(effs):.2f}")
    assert np.median(effs) > 0.82    # "generally above 85 %" in the paper


def test_fig6c_8201_fares_poorly(benchmark, psu_points):
    loads, effs = benchmark(efficiency_scatter, psu_points, "8201-32FH")
    print(f"\nFig. 6c -- 8201-32FH: eff {effs.min():.2f}-{effs.max():.2f} "
          f"median {np.median(effs):.2f}")
    assert np.median(effs) < 0.80    # paper: "76 % or worse"


def test_fig6d_asr920_varies_wildly(benchmark, psu_points):
    loads, effs = benchmark(efficiency_scatter, psu_points,
                            "ASR-920-24SZ-M")
    print(f"\nFig. 6d -- ASR-920-24SZ-M: eff {effs.min():.2f}-"
          f"{effs.max():.2f} (spread {effs.max() - effs.min():.2f})")
    # The same model spans (nearly) the dataset's whole range.
    assert effs.max() - effs.min() > 0.20


def test_fig6_no_temperature_proxy_needed(benchmark, psu_points):
    """§9.3.1: no correlation between load and efficiency *within* a
    model explains the spread -- it is instance-level variation."""
    def within_model_spread():
        loads, effs = efficiency_scatter(psu_points, "ASR-920-24SZ-M")
        if np.std(loads) < 1e-9:
            return 0.0
        return abs(float(np.corrcoef(loads, effs)[0, 1]))

    corr = benchmark(within_model_spread)
    print(f"\n  |corr(load, eff)| within ASR-920 population: {corr:.2f}")
    # Load alone cannot explain the spread (same loads, wild efficiency).
    loads, effs = efficiency_scatter(psu_points, "ASR-920-24SZ-M")
    assert np.std(effs) > 0.03
