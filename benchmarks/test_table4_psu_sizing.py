"""E12 -- Table 4: savings from right-sizing PSU capacities.

Paper: sizing close to demand saves ~2 % (250-400 W floors), the savings
cross zero around the 1100 W floor, and even huge over-dimensioning only
costs ~1 % -- "over-dimensioning costs less than poor efficiency".  The
k=1 and k=2 rows are nearly identical.

Our fleet has more tiny access routers than Switch, so the penalty of
forcing a 2700 W floor onto them is steeper; the crossover and the
orderings -- the shape -- are what the bench asserts.
"""

import pytest

from repro.hardware.psu import PSU_CAPACITIES_W
from repro.psu_opt import table4

PAPER_K1 = {250: 0.02, 400: 0.02, 750: 0.01, 1100: 0.00,
            2000: -0.01, 2700: -0.01}


def test_table4(benchmark, psu_points):
    table = benchmark(table4, psu_points)

    print("\nTable 4 -- PSU right-sizing savings (ours vs paper k=1)")
    print("  floor:   " + " ".join(f"{int(c):>7d}W"
                                   for c in PSU_CAPACITIES_W))
    for k in (1.0, 2.0):
        row = [table[k][float(c)].fraction for c in PSU_CAPACITIES_W]
        print(f"  k={k:g}:    " + " ".join(f"{100 * f:+7.1f}%" for f in row))
    print("  paper:   " + " ".join(f"{100 * PAPER_K1[c]:+7.0f}%"
                                   for c in PSU_CAPACITIES_W))

    for k in (1.0, 2.0):
        row = [table[k][float(c)].fraction for c in PSU_CAPACITIES_W]
        # Monotone decrease with the capacity floor.
        assert row == sorted(row, reverse=True)
        # Positive at tight sizing, negative at gross over-provisioning.
        assert row[0] > 0.005
        assert row[-1] < 0

    # Crossover sits between the 400 W and 2000 W floors (paper: 1100 W).
    k1 = {c: table[1.0][float(c)].fraction for c in PSU_CAPACITIES_W}
    assert k1[400] > 0
    assert k1[2000] < 0

    # k=1 saves at least as much as k=2 everywhere (only the smallest
    # floors differ, like the paper's two near-identical rows).
    for c in PSU_CAPACITIES_W:
        assert table[1.0][float(c)].fraction \
            >= table[2.0][float(c)].fraction - 1e-9


def test_table4_overdimensioning_cheaper_than_inefficiency(benchmark,
                                                           psu_points):
    """§9.3.3's takeaway: over-dimensioning (one step up from optimal)
    costs less than the gap to high-efficiency PSUs (Table 3)."""
    from repro.hardware import EightyPlus
    from repro.psu_opt import upgrade_savings, resize_savings

    def both():
        titanium = upgrade_savings(psu_points, EightyPlus.TITANIUM).fraction
        one_step = abs(resize_savings(psu_points, 2.0, 750).fraction)
        return titanium, one_step

    titanium_gap, one_step_cost = benchmark(both)
    print(f"\n  efficiency gap (Titanium upgrade): "
          f"{100 * titanium_gap:.1f} %")
    print(f"  moderate over-dimensioning cost  : "
          f"{100 * one_step_cost:.1f} %")
    assert one_step_cost < titanium_gap
