"""Shared artefacts for the per-table/figure benchmarks.

Each benchmark regenerates one table or figure of the paper.  The heavy
inputs -- a month-long monitored fleet campaign, the full lab derivation
of all eight modelled devices, the 777-sheet datasheet corpus -- are
built once per session here; the benchmarks time and verify the analysis
that turns them into the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro import units
from repro.core import PowerModel, derive_power_model
from repro.datasheets import build_corpus, parse_corpus
from repro.hardware import MODELLED_DEVICES, VirtualRouter, router_spec
from repro.lab import ExperimentPlan, Orchestrator
from repro.network import (
    AddExternalInterface,
    Commission,
    Decommission,
    DeployAutopower,
    FleetTrafficModel,
    NetworkSimulation,
    SetAdminState,
    UnplugModule,
    build_switch_like_network,
)
from repro.psu_opt import clean_exports

#: The Fig. 4 validation trio.
VALIDATION_MODELS = ("8201-32FH", "NCS-55A1-24H", "N540X-8Z16G-SYS-A")

#: Campaign length; the paper's Autopower window is two months, we run
#: four simulated weeks to keep the bench session under a minute.
CAMPAIGN_DAYS = 28
CAMPAIGN_STEP_S = 1800.0


@dataclass
class Campaign:
    """The monitored fleet run all deployment benches consume."""

    network: object
    result: object
    validation_hosts: Dict[str, str]
    events_log: List[str]


def _find_port_with_optic(router) -> int:
    """An up interface with an optical module (for the Oct-9 unplug)."""
    for port in router.ports:
        if (port.plugged and port.link_up
                and port.transceiver.model.power_in_w > 5.0):
            return port.index
    for port in router.ports:
        if port.plugged and port.link_up:
            return port.index
    raise AssertionError("no pluggable interface found")


@pytest.fixture(scope="session")
def campaign() -> Campaign:
    """Four monitored weeks of the 107-router fleet, with the paper's
    operational events injected (Fig. 1 steps, Fig. 4 module changes)."""
    rng = np.random.default_rng(7)
    network = build_switch_like_network(rng=rng)
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(8),
                                mean_external_utilisation=0.03,
                                internal_utilisation_scale=3.0)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(9))

    hosts = {}
    for model in VALIDATION_MODELS:
        hosts[model] = next(h for h in sorted(network.routers)
                            if network.routers[h].model_name == model)
    h8201 = hosts["8201-32FH"]
    unplug_port = _find_port_with_optic(network.routers[h8201])
    # The flapping interface must carry an *optical* module for the
    # paper's effect (the model assumes it unplugged; P_trx,in remains).
    flap_port = next(
        p.index for p in network.routers[h8201].ports
        if (p.plugged and p.link_up and p.index != unplug_port
            and p.transceiver.model.power_in_w > 5.0))
    asr920s = [h for h in sorted(network.routers)
               if network.routers[h].model_name == "ASR-920-24SZ-M"]
    free_port = next(p.index for p in network.routers[h8201].ports
                     if not p.plugged)

    events = [
        # Autopower installation (power-cycles the routers, Fig. 4b).
        *[DeployAutopower(at_s=units.days(2), hostname=h)
          for h in hosts.values()],
        # Fig. 1: hardware (de)commissioning steps in the network total.
        Decommission(at_s=units.days(8), hostname=asr920s[0]),
        Commission(at_s=units.days(16), hostname=asr920s[0]),
        # Fig. 4a, "Oct 9": an optical interface is removed outright.
        UnplugModule(at_s=units.days(17), hostname=h8201,
                     port_index=unplug_port),
        # Fig. 4a, "Oct 22-25": flapping interface shut, module left in.
        SetAdminState(at_s=units.days(20), hostname=h8201,
                      port_index=flap_port, up=False),
        SetAdminState(at_s=units.days(23), hostname=h8201,
                      port_index=flap_port, up=True),
        # Fig. 4a, "Oct 31": new interfaces provisioned.
        AddExternalInterface(at_s=units.days(26), hostname=h8201,
                             port_index=free_port,
                             trx_name="QSFP-DD-400G-FR4"),
    ]
    result = sim.run(duration_s=units.days(CAMPAIGN_DAYS),
                     step_s=CAMPAIGN_STEP_S, events=events,
                     detailed_hosts=sorted(hosts.values()))
    log = [f"{type(e).__name__}@day{e.at_s / units.days(1):.0f}"
           for e in events]
    return Campaign(network=network, result=result,
                    validation_hosts=hosts, events_log=log)


# ---------------------------------------------------------------------------
# Lab models
# ---------------------------------------------------------------------------

#: Per device: the (transceiver, configured speed) suites the paper's
#: Tables 2 and 6 list, in table order.
DEVICE_SUITES: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "NCS-55A1-24H": (("QSFP28-100G-DAC", 100), ("QSFP28-100G-DAC", 50),
                     ("QSFP28-100G-DAC", 25)),
    "Nexus9336-FX2": (("QSFP28-100G-LR", 100), ("QSFP28-100G-DAC", 100)),
    "8201-32FH": (("QSFP-100G-DAC", 100),),
    "N540X-8Z16G-SYS-A": (("SFP-1G-T", 1),),
    "Wedge 100BF-32X": (("QSFP28-100G-DAC", 100), ("QSFP28-100G-DAC", 50),
                        ("QSFP28-100G-DAC", 25)),
    "Nexus 93108TC-FX3P": (("QSFP28-100G-DAC", 100), ("QSFP28-40G-DAC", 40),
                           ("RJ45-10G-T", 10), ("RJ45-1G-T", 1)),
    "VSP-4900": (("SFP+-10G-T", 10),),
    "Catalyst 3560": (("RJ45-100M-T", 0.1),),
}


def _plan_for(trx_name: str, speed: float) -> ExperimentPlan:
    if speed >= 25:
        rates = tuple(r for r in (2.5, 5, 10, 25, 50, 75, 100) if r <= speed)
    elif speed >= 1:
        rates = tuple(r * speed for r in (0.1, 0.25, 0.5, 0.75, 0.95))
    else:
        rates = (0.01, 0.03, 0.06, 0.09)
    return ExperimentPlan(
        trx_name=trx_name, speed_gbps=speed,
        n_pairs_values=(1, 2, 4, 6, 8),
        rates_gbps=rates, packet_sizes=(64, 256, 512, 1024, 1500),
        snake_n_pairs=4, measure_duration_s=30, settle_time_s=5)


def derive_device_model(device: str, seed: int) -> PowerModel:
    """Run the full NetPowerBench protocol for one catalog device."""
    rng = np.random.default_rng(seed)
    dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    suites = [orchestrator.run_suite(_plan_for(trx, speed))
              for trx, speed in DEVICE_SUITES[device]]
    model, _reports = derive_power_model(suites)
    return model


@pytest.fixture(scope="session")
def all_device_models() -> Dict[str, PowerModel]:
    """Fitted power models for all eight Table 2 + Table 6 devices."""
    return {device: derive_device_model(device, seed=1000 + i)
            for i, device in enumerate(MODELLED_DEVICES)}


@pytest.fixture(scope="session")
def validation_lab_models() -> Dict[str, PowerModel]:
    """Models covering the interface classes deployed on the Fig. 4 trio."""
    quick = dict(n_pairs_values=(1, 2, 4, 6), rates_gbps=(2.5, 10, 25, 50),
                 packet_sizes=(256, 1500), snake_n_pairs=3,
                 measure_duration_s=20, settle_time_s=2)
    slow = dict(n_pairs_values=(1, 2, 4, 6), rates_gbps=(0.1, 0.3, 0.6, 0.9),
                packet_sizes=(256, 1500), snake_n_pairs=2,
                measure_duration_s=20, settle_time_s=2)

    def derive(device, plans, seed):
        rng = np.random.default_rng(seed)
        dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
        orchestrator = Orchestrator(dut, rng=rng)
        model, _ = derive_power_model(
            [orchestrator.run_suite(p) for p in plans])
        return model

    return {
        "8201-32FH": derive("8201-32FH", [
            ExperimentPlan(trx_name="QSFP-DD-400G-FR4", **quick),
            ExperimentPlan(trx_name="QSFP-DD-400G-LR4", **quick),
            ExperimentPlan(trx_name="QSFP-DD-400G-DAC", **quick),
            ExperimentPlan(trx_name="QSFP28-100G-LR4", **quick),
        ], seed=501),
        "NCS-55A1-24H": derive("NCS-55A1-24H", [
            ExperimentPlan(trx_name="QSFP28-100G-DAC", **quick),
            ExperimentPlan(trx_name="QSFP28-100G-LR4", **quick),
            ExperimentPlan(trx_name="QSFP28-100G-SR4", **quick),
        ], seed=502),
        "N540X-8Z16G-SYS-A": derive("N540X-8Z16G-SYS-A", [
            ExperimentPlan(trx_name="SFP+-10G-SR",
                           n_pairs_values=(1, 2, 3, 4),
                           rates_gbps=(1, 2.5, 5, 10),
                           packet_sizes=(256, 1500), snake_n_pairs=2,
                           measure_duration_s=20, settle_time_s=2),
            ExperimentPlan(trx_name="SFP-1G-T", **slow),
            ExperimentPlan(trx_name="SFP-1G-LX", **slow),
        ], seed=503),
    }


# ---------------------------------------------------------------------------
# Datasheets & PSU points
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def corpus():
    """The 777-model datasheet corpus."""
    return build_corpus(777, np.random.default_rng(11))


@pytest.fixture(scope="session")
def parsed(corpus):
    """Extraction output over the whole corpus."""
    return parse_corpus(corpus)


@pytest.fixture(scope="session")
def psu_points(campaign):
    """Cleaned §9.2 PSU observations from the campaign's sensor export."""
    return clean_exports(campaign.result.sensor_exports)
