"""E4 -- Table 1: datasheet "typical" power vs measured median.

For eight router models the paper compares the datasheet's typical power
to the median of the SNMP power traces.  Most datasheets overestimate by
20-40 %; the two Cisco 8000-series models *underestimate* (-24 %, -44 %).
"""

import numpy as np
import pytest

from repro.datasheets import datasheet_vs_measured
from repro.hardware import TABLE1_DEVICES

#: The paper's Table 1 overestimation column, for shape comparison.
PAPER_TABLE1 = {
    "NCS-55A1-24H": 0.40,
    "ASR-920-24SZ-M": 0.33,
    "NCS-55A1-24Q6H-SS": 0.28,
    "NCS-55A1-48Q6H": 0.24,
    "ASR-9001": 0.21,
    "N540-24Z8Q2C-M": 0.20,
    "8201-32FH": -0.24,
    "8201-24H8FH": -0.44,
}


@pytest.fixture(scope="module")
def measured_medians(campaign):
    """Per-model median of the SNMP-reported power over the campaign."""
    by_model = {}
    for trace in campaign.result.snmp.values():
        by_model.setdefault(trace.router_model, []).append(
            trace.median_power_w())
    return {model: float(np.nanmedian(medians))
            for model, medians in by_model.items()
            if model in TABLE1_DEVICES and np.isfinite(
                np.nanmedian(medians))}


def test_table1(benchmark, parsed, measured_medians):
    rows = benchmark(datasheet_vs_measured, parsed, measured_medians)

    print("\nTable 1 -- datasheet 'typical' vs measured median")
    print(f"  {'model':22s} {'measured':>9s} {'typical':>9s} "
          f"{'ours':>6s} {'paper':>6s}")
    by_model = {}
    for row in rows:
        paper = PAPER_TABLE1.get(row.router_model, float('nan'))
        print(f"  {row.router_model:22s} {row.measured_median_w:8.0f} W "
              f"{row.datasheet_typical_w:8.0f} W "
              f"{100 * row.relative_overestimate:+5.0f}% {100 * paper:+5.0f}%")
        by_model[row.router_model] = row

    # The N540X reports no power over SNMP, so at most 7 of the 8 models
    # can appear (the paper's 8 all reported); everything measured must
    # reproduce the sign and rough magnitude of the paper's column.
    assert len(rows) >= 6
    for model, row in by_model.items():
        paper = PAPER_TABLE1[model]
        assert np.sign(row.relative_overestimate) == np.sign(paper), model
        assert row.relative_overestimate == pytest.approx(paper, abs=0.12), \
            model


def test_table1_cisco8000_surprise(benchmark, parsed, measured_medians):
    rows = benchmark(datasheet_vs_measured, parsed, measured_medians)
    under = [r for r in rows if not r.overestimates]
    print(f"\n  underestimating datasheets: "
          f"{[r.router_model for r in under]}")
    # Exactly the Cisco 8000 series underestimates.
    assert {r.router_model for r in under} \
        <= {"8201-32FH", "8201-24H8FH"}
    assert len(under) >= 1
