"""E11 -- Table 3: savings from better PSUs and PSU consolidation.

Paper row 1 (more efficient PSUs): 2 % (Bronze) rising to 7 % (Titanium).
Paper row 2 (only one PSU): 4 %.  Paper row 3 (both): 5 % to 9 %.
The bench regenerates all three rows and asserts the regime and the
orderings; absolute percentages land in the same bands.
"""

import pytest

from repro.hardware import EightyPlus
from repro.psu_opt import table3

PAPER_UPGRADE = {"Bronze": 0.02, "Silver": 0.03, "Gold": 0.04,
                 "Platinum": 0.05, "Titanium": 0.07}
PAPER_COMBINED = {"Bronze": 0.05, "Silver": 0.06, "Gold": 0.07,
                  "Platinum": 0.07, "Titanium": 0.09}


def test_table3(benchmark, psu_points):
    table = benchmark(table3, psu_points)

    print("\nTable 3 -- PSU power-saving measures (ours vs paper)")
    print(f"  {'measure':18s} " + " ".join(f"{s.value:>9s}"
                                           for s in EightyPlus))
    upgrade = table["upgrade"]
    combined = table["combined"]
    print("  upgrade           "
          + " ".join(f"{100 * upgrade[s.value].fraction:8.1f}%"
                     for s in EightyPlus))
    print("  (paper)           "
          + " ".join(f"{100 * PAPER_UPGRADE[s.value]:8.0f}%"
                     for s in EightyPlus))
    single = table["single_psu"]["Bronze"]
    print(f"  single PSU        {100 * single.fraction:8.1f}%  "
          f"(paper: 4 %)")
    print("  combined          "
          + " ".join(f"{100 * combined[s.value].fraction:8.1f}%"
                     for s in EightyPlus))
    print("  (paper)           "
          + " ".join(f"{100 * PAPER_COMBINED[s.value]:8.0f}%"
                     for s in EightyPlus))

    # Row 1: monotone in the standard, single-digit percent regime,
    # Titanium the largest.
    fractions = [upgrade[s.value].fraction for s in EightyPlus]
    assert fractions == sorted(fractions)
    assert 0.0 <= fractions[0] < 0.05          # Bronze small
    assert 0.01 < upgrade["Platinum"].fraction < 0.09
    assert fractions[-1] < 0.13                # Titanium largest but sane

    # Row 2: consolidation helps by mid single digits (paper: 4 %).
    assert 0.02 < single.fraction < 0.15

    # Row 3: combined beats each measure alone and stays monotone.
    combined_fracs = [combined[s.value].fraction for s in EightyPlus]
    assert combined_fracs == sorted(combined_fracs)
    for std in EightyPlus:
        assert combined[std.value].fraction >= \
            upgrade[std.value].fraction - 1e-9
        assert combined[std.value].fraction >= single.fraction - 1e-9


def test_table3_watts_are_substantial(benchmark, psu_points):
    table = benchmark(table3, psu_points)
    titanium = table["combined"]["Titanium"]
    print(f"\n  combined Titanium savings: {titanium.saved_w:.0f} W "
          f"of {titanium.reference_w:.0f} W (paper: 1974 W of ~22 kW)")
    # Hundreds to a couple thousand watts on a ~22 kW network.
    assert 500 < titanium.saved_w < 6000
