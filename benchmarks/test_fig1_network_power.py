"""E1 -- Fig. 1: total network power and traffic volume over time.

The paper plots the Switch network's total power (~21.5-22 kW, with steps
at hardware (de)commissioning) against total traffic (~1.3 Tbps average,
~1.3 % of capacity), noting that the power-traffic correlation is
invisible at network scale.
"""

import numpy as np
import pytest

from repro import units


def fig1_series(campaign):
    """The two Fig. 1 curves on a 3-hour averaged grid."""
    power = campaign.result.total_power.resample(units.hours(3))
    traffic = campaign.result.total_traffic_bps.resample(units.hours(3))
    return power, traffic


def test_fig1_total_power_and_traffic(benchmark, campaign):
    power, traffic = benchmark(fig1_series, campaign)

    capacity = campaign.network.total_capacity_bps()
    mean_power = power.mean()
    mean_traffic_tbps = units.bps_to_tbps(traffic.mean())
    utilisation = traffic.mean() / capacity

    print("\nFig. 1 -- network total power & traffic")
    print(f"  mean power     : {mean_power:8.0f} W   (paper: ~21 700 W)")
    print(f"  mean traffic   : {mean_traffic_tbps:8.2f} Tbps "
          f"(paper: ~1.3 Tbps)")
    print(f"  utilisation    : {100 * utilisation:8.2f} %  (paper: ~1.3 %)")
    print(f"  power swing    : {np.nanmin(power.values):6.0f} - "
          f"{np.nanmax(power.values):6.0f} W")
    print(f"  events         : {', '.join(campaign.events_log)}")

    # Shape assertions: the paper's aggregates.
    assert 19_000 < mean_power < 25_000
    assert 0.003 < utilisation < 0.05
    # Power varies by far less than traffic does, relatively: the
    # "traffic barely moves power" headline.
    power_rel_swing = np.nanstd(power.values) / mean_power
    traffic_rel_swing = np.nanstd(traffic.values) / traffic.mean()
    assert traffic_rel_swing > 5 * power_rel_swing


def test_fig1_commissioning_steps_visible(benchmark, campaign):
    def step_size(result):
        power = result.total_power
        # Power before and after the day-8 decommissioning event.
        before = power.slice(units.days(7), units.days(8)).mean()
        during = power.slice(units.days(9), units.days(15)).mean()
        after = power.slice(units.days(17), units.days(20)).mean()
        return before - during, after - during

    drop, recovery = benchmark(step_size, campaign.result)
    print(f"\n  decommissioning step: -{drop:.0f} W, back: +{recovery:.0f} W")
    # One ASR-920 (~73 W) went dark and came back.
    assert 40 < drop < 120
    assert 40 < recovery < 120


def test_fig1_power_traffic_correlation_invisible(benchmark, campaign):
    def correlation(result):
        power = result.total_power.resample(units.hours(3))
        traffic = result.total_traffic_bps.resample(units.hours(3))
        n = min(len(power), len(traffic))
        mask = ~(np.isnan(power.values[:n]) | np.isnan(traffic.values[:n]))
        return float(np.corrcoef(power.values[:n][mask],
                                 traffic.values[:n][mask])[0, 1])

    corr = benchmark(correlation, campaign.result)
    print(f"\n  power-traffic correlation at network scale: {corr:+.3f}")
    # §1: "the correlation between power and traffic is invisible at the
    # network scale" -- commissioning steps and noise dominate.  We allow
    # weak positive correlation but nothing resembling proportionality.
    assert corr < 0.6
