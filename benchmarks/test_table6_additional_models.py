"""E6 -- Table 6: the four additional lab-modelled devices.

Same round-trip as Table 2, for the Wedge 100BF-32X, the Nexus
93108TC-FX3P, the Extreme VSP-4900, and the Catalyst 3560.
"""

import pytest

from repro.core.model import InterfaceClassKey
from repro.hardware import router_spec
from repro.hardware.transceiver import TRANSCEIVER_CATALOG

from conftest import DEVICE_SUITES
from test_table2_power_models import assert_close, print_model_table, truth_for

TABLE6_DEVICES = ("Wedge 100BF-32X", "Nexus 93108TC-FX3P", "VSP-4900",
                  "Catalyst 3560")


@pytest.mark.parametrize("device", TABLE6_DEVICES)
def test_table6_device(benchmark, device, all_device_models):
    model = benchmark(lambda: all_device_models[device])
    print_model_table(device, model)

    spec = router_spec(device)
    assert model.p_base_w.value == pytest.approx(
        spec.p_base_w, rel=0.08, abs=1.5)

    for trx_name, speed in DEVICE_SUITES[device]:
        truth, port_type = truth_for(device, trx_name, speed)
        key = InterfaceClassKey(port_type.value,
                                TRANSCEIVER_CATALOG[trx_name].reach.value,
                                speed)
        fitted = model.interfaces[key]
        label = f"{device}/{key}"
        assert_close(fitted.p_port_w.value, truth.p_port_w,
                     0.35, 0.20, f"{label}.p_port")
        assert_close(fitted.p_trx_in_w.value, truth.p_trx_in_w,
                     0.35, 0.20, f"{label}.p_trx_in")
        if speed >= 10:
            assert_close(fitted.e_bit_pj.value, truth.e_bit_pj,
                         0.3, 1.2, f"{label}.e_bit")
            assert_close(fitted.e_pkt_nj.value, truth.e_pkt_nj,
                         0.3, 4.0, f"{label}.e_pkt")


def test_table6_catalyst_per_packet_cost(benchmark, all_device_models):
    """The Catalyst 3560's enormous E_pkt (193 nJ) must survive the
    round-trip: at 100 Mbps its power is packet-dominated."""
    model = benchmark(lambda: all_device_models["Catalyst 3560"])
    fitted = model.interfaces[InterfaceClassKey("RJ45", "T", 0.1)]
    print(f"\n  Catalyst 3560 E_pkt: {fitted.e_pkt_nj.value:.0f} nJ "
          f"(truth 193.1)")
    assert fitted.e_pkt_nj.value == pytest.approx(193.1, rel=0.3)
    # Per-packet energy dwarfs per-bit energy at 64 B packets.
    per_packet_bits = 8 * (64 + 38)
    assert fitted.e_pkt_nj.value * 1e-9 \
        > 5 * fitted.e_bit_pj.value * 1e-12 * per_packet_bits


def test_table6_wedge_energy_efficiency_ordering(benchmark,
                                                 all_device_models):
    """The Tofino-based Wedge forwards bits far more efficiently than
    the older NCS platform (1.7 vs 22 pJ/bit at 100G)."""
    def e_bits():
        wedge = all_device_models["Wedge 100BF-32X"]
        ncs = all_device_models["NCS-55A1-24H"]
        key = InterfaceClassKey("QSFP28", "Passive DAC", 100)
        return (wedge.interfaces[key].e_bit_pj.value,
                ncs.interfaces[key].e_bit_pj.value)

    wedge_ebit, ncs_ebit = benchmark(e_bits)
    print(f"\n  E_bit at 100G DAC: Wedge {wedge_ebit:.1f} pJ "
          f"vs NCS {ncs_ebit:.1f} pJ")
    assert wedge_ebit < 0.3 * ncs_ebit
