"""E16 -- Fig. 8: an OS update changes fan behaviour (+45 W, ≈ +12 %).

§4.3's cautionary tale for un-modelled factors: on March 13 an OS
upgrade on an 8201-32FH changed the temperature-management logic; fan
speeds rose and power jumped by 45 W with no configuration change.
"""

import numpy as np
import pytest

from repro import units
from repro.hardware import VirtualRouter, router_spec
from repro.network import (
    FleetConfig,
    FleetTrafficModel,
    NetworkSimulation,
    OsUpdate,
    build_switch_like_network,
)


@pytest.fixture(scope="module")
def os_update_trace():
    """Four monitored weeks of one 8201 with the update mid-way."""
    config = FleetConfig(
        model_counts=(("8201-32FH", 1), ("NCS-55A1-24H", 2),
                      ("ASR-920-24SZ-M", 3)),
        n_regional_pops=2, core_core_links=1)
    network = build_switch_like_network(config,
                                        rng=np.random.default_rng(55))
    host = next(h for h in sorted(network.routers)
                if network.routers[h].model_name == "8201-32FH")
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(56),
                                n_demands=60)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(57))
    result = sim.run(
        duration_s=units.days(28), step_s=1800,
        events=[OsUpdate(at_s=units.days(13), hostname=host,
                         fan_bump_w=45.0)],
        detailed_hosts=[host])
    return host, result


def test_fig8_power_bump(benchmark, os_update_trace):
    host, result = os_update_trace

    def measure():
        power = result.snmp[host].power.valid()
        before = power.slice(units.days(6), units.days(13)).mean()
        after = power.slice(units.days(14), units.days(28)).mean()
        return before, after

    before, after = benchmark(measure)
    bump = after - before
    print(f"\nFig. 8 -- OS update on the 8201-32FH")
    print(f"  before: {before:.0f} W, after: {after:.0f} W "
          f"(bump {bump:+.0f} W, {100 * bump / before:+.0f} %)")
    print(f"  paper : +45 W, ≈ +12 %")
    assert bump == pytest.approx(45.0, abs=6.0)
    assert 0.08 < bump / before < 0.18


def test_fig8_nothing_else_changed(benchmark, os_update_trace):
    """The step is attributable to the update alone: configuration and
    traffic statistics are unchanged across it."""
    host, result = os_update_trace
    trace = result.snmp[host]

    def traffic_levels():
        total = trace.total_octet_rate()
        before = total.slice(units.days(6), units.days(13)).mean()
        after = total.slice(units.days(14), units.days(21)).mean()
        return before, after

    before, after = benchmark(traffic_levels)
    print(f"\n  traffic before/after: {before / 1e6:.1f} / "
          f"{after / 1e6:.1f} MB/s")
    assert after == pytest.approx(before, rel=0.35)


def test_fig8_unmodelled_factor_breaks_prediction(benchmark):
    """§4.3: a model derived before the update inherits a +45 W error
    after it -- exactly the 'software version' caveat."""
    rng = np.random.default_rng(58)
    router = VirtualRouter(router_spec("8201-32FH"), rng=rng,
                           noise_std_w=0.0)

    def offset_after_update():
        before = router.wall_power_w()
        router.apply_os_update(45.0)
        after = router.wall_power_w()
        router.fan_bump_w = 0.0  # undo for the next benchmark round
        return after - before

    delta = benchmark(offset_after_update)
    print(f"\n  wall power step from the update: {delta:+.1f} W")
    assert delta == pytest.approx(45.0 / 0.9, rel=0.2)  # through the PSU
