"""E14 -- §8: power savings of Hypnos link sleeping.

Paper: over one month on the Switch traces, Hypnos would save between 80
and 390 W -- 0.4-1.9 % of the total router power -- far below the naive
(P_port + P_trx)-per-side expectation, because (i) ``P_trx,in`` survives
port shutdown and (ii) only internal links are in scope (51 % of
interfaces, 52 % of transceiver power are external).
"""

import numpy as np
import pytest

from repro import units
from repro.network import FleetTrafficModel
from repro.sleep import (
    Hypnos,
    HypnosConfig,
    external_power_share,
    naive_saving_w,
    plan_savings,
)


@pytest.fixture(scope="module")
def sleeping_inputs(campaign):
    traffic = FleetTrafficModel(campaign.network,
                                rng=np.random.default_rng(88),
                                n_demands=800)
    hypnos = Hypnos(campaign.network, traffic.matrix)
    return campaign.network, hypnos


@pytest.fixture(scope="module")
def weekly_plan(sleeping_inputs):
    _network, hypnos = sleeping_inputs
    # One representative week; the plan repeats with the diurnal cycle,
    # so the weekly savings fraction equals the paper's monthly one.
    return hypnos.plan(0, units.days(7))


def test_section8_savings_range(benchmark, sleeping_inputs, weekly_plan,
                                campaign):
    network, _hypnos = sleeping_inputs
    reference = campaign.result.total_power.mean()
    estimate = benchmark(plan_savings, network, weekly_plan, reference)

    sleeping = weekly_plan.ever_sleeping()
    print("\n§8 -- link sleeping savings")
    print(f"  sleepable links : {len(sleeping)} of "
          f"{len(network.internal_links())} internal")
    print(f"  savings         : {estimate} "
          f"(paper: 80-390 W, 0.4-1.9 %)")

    # The same regime as the paper: fractions of a percent to ~2.5 %.
    assert 0.001 < estimate.lower_fraction < 0.03
    assert estimate.lower_fraction < estimate.upper_fraction < 0.06
    assert 20 < estimate.lower_w
    assert estimate.upper_w < 1200


def test_section8_sleepable_share(benchmark, sleeping_inputs):
    network, hypnos = sleeping_inputs
    asleep = benchmark.pedantic(hypnos.plan_window, args=(1.0,),
                                rounds=1, iterations=1)
    share = len(asleep) / len(network.internal_links())
    print(f"\n  sleepable share at mean demand: {100 * share:.0f} % "
          f"(paper: ~1/3 of links)")
    assert 0.08 < share < 0.55


def test_section8_far_below_naive_estimate(benchmark, sleeping_inputs,
                                           weekly_plan, campaign):
    network, _hypnos = sleeping_inputs

    def naive_total():
        return sum(
            weekly_plan.sleep_fraction(link_id)
            * naive_saving_w(network, link_id)
            for link_id in weekly_plan.ever_sleeping())

    naive = benchmark(naive_total)
    reference = campaign.result.total_power.mean()
    estimate = plan_savings(network, weekly_plan, reference)
    print(f"\n  naive (P_port + P_trx)/side estimate: {naive:.0f} W")
    print(f"  expected-realistic lower bound      : "
          f"{estimate.lower_w:.0f} W")
    # The realistic lower bound (P_trx,up = 0, the paper's own bet) is a
    # small fraction of what prior work would have claimed.
    assert estimate.lower_w < 0.5 * naive


def test_section8_externals_out_of_reach(benchmark, campaign):
    share = benchmark(external_power_share, campaign.network)
    print(f"\n  external share of transceiver power: "
          f"{100 * share['external_share']:.0f} % (paper: 52 %)")
    assert share["external_share"] > 0.40


def test_section8_more_sleep_at_night(benchmark, sleeping_inputs):
    _network, hypnos = sleeping_inputs

    def day_night():
        night = hypnos.plan_window(0.5)
        day = hypnos.plan_window(2.0)
        return len(night), len(day)

    night, day = benchmark.pedantic(day_night, rounds=1, iterations=1)
    print(f"\n  sleepable at night demand: {night}, at peak: {day}")
    assert night >= day
