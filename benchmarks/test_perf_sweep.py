"""Performance benchmark: multiprocess sweep vs serial execution.

Guards the point of the sweep runner (:mod:`repro.sweep.runner`): on a
machine with enough cores, fanning an 8-job matrix out to 4 worker
processes must cut wall-clock time by at least 2x versus ``workers=1``
-- while producing the identical report, which the equivalence assert
below re-checks at benchmark scale.  Skipped (not passed vacuously)
when fewer than 4 usable cores are available, e.g. single-core CI.
"""

import os
import time

import pytest

from repro.sweep import ScenarioMatrix, run_sweep

#: 8 jobs heavy enough (4 simulated days each) that process fan-out
#: dominates worker start-up cost.
MATRIX = ScenarioMatrix(
    topologies=("tiny", "small"), traffics=("quiet", "busy"),
    sleeps=("none",), psus=("balanced", "single"),
    duration_s=4 * 24 * 3600.0, step_s=900.0)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_sweep(workers: int):
    start = time.perf_counter()
    document = run_sweep(MATRIX, root_seed=7, workers=workers)
    return time.perf_counter() - start, document


class TestSweepSpeedup:
    def test_four_workers_halve_wall_clock(self):
        if _usable_cores() < 4:
            pytest.skip(f"needs >= 4 usable cores, "
                        f"have {_usable_cores()}")
        serial_s, serial_doc = _timed_sweep(1)
        parallel_s, parallel_doc = _timed_sweep(4)
        speedup = serial_s / parallel_s
        print(f"\nworkers=1 {serial_s:.2f}s, workers=4 {parallel_s:.2f}s "
              f"-> {speedup:.1f}x over {MATRIX.n_jobs} jobs")
        assert parallel_doc == serial_doc  # same bytes, always
        # 4 workers on >= 4 cores: ideal ~4x, queue + fork overhead
        # real; 2x is the never-regress floor.
        assert speedup >= 2.0, (
            f"sweep speedup regressed to {speedup:.2f}x "
            f"(workers=1 {serial_s:.2f}s vs workers=4 {parallel_s:.2f}s)")

    def test_reports_identical_at_available_parallelism(self):
        # Runs everywhere, including single-core CI: whatever
        # parallelism the box has, the report must not change.
        workers = min(4, max(2, _usable_cores()))
        _, serial_doc = _timed_sweep(1)
        _, parallel_doc = _timed_sweep(workers)
        assert parallel_doc == serial_doc
