"""E9 -- Fig. 5: the PFE600 efficiency curve and the 80 Plus set points.

The figure anchors §9: PSU efficiency peaks around 50-60 % load and
collapses below 10-20 %, and the certification levels stack above one
another.
"""

import numpy as np
import pytest

from repro.hardware.psu import (
    EIGHTY_PLUS_SET_POINTS,
    EightyPlus,
    PFE600_CURVE,
    meets_standard,
    standard_curve,
)


def curve_points():
    loads = np.linspace(0.02, 1.0, 50)
    return loads, np.array([PFE600_CURVE.efficiency(l) for l in loads])


def test_fig5_pfe600_curve(benchmark):
    loads, effs = benchmark(curve_points)

    print("\nFig. 5 -- PFE600-12-054xA efficiency curve")
    for pct in (5, 10, 20, 50, 100):
        print(f"  {pct:3d} % load: {100 * PFE600_CURVE.efficiency(pct / 100):5.1f} %")

    # Shape: Platinum set points hit exactly, deep collapse at low load,
    # peak in the 45-70 % band, slight decline to full load.
    assert PFE600_CURVE.efficiency(0.20) == pytest.approx(0.90)
    assert PFE600_CURVE.efficiency(0.50) == pytest.approx(0.94)
    assert PFE600_CURVE.efficiency(1.00) == pytest.approx(0.91)
    assert PFE600_CURVE.efficiency(0.05) < 0.70
    peak_load = loads[int(np.argmax(effs))]
    assert 0.45 <= peak_load <= 0.70
    assert effs[-1] < effs.max()


def test_fig5_eighty_plus_set_points(benchmark):
    def build():
        return {std: EIGHTY_PLUS_SET_POINTS[std] for std in EightyPlus}

    points = benchmark(build)
    print("\n  80 Plus set points (230 V internal):")
    for std, levels in points.items():
        row = ", ".join(f"{int(100 * l)}%:{100 * e:.0f}%"
                        for l, e in sorted(levels.items()))
        print(f"    {std.value:9s} {row}")

    # Levels are strictly ordered at every shared load point.
    for load in (0.20, 0.50):
        required = [EIGHTY_PLUS_SET_POINTS[s][load] for s in EightyPlus]
        assert required == sorted(required)
    # The PFE600 is certified Platinum but not Titanium.
    assert meets_standard(PFE600_CURVE, EightyPlus.PLATINUM)
    assert not meets_standard(PFE600_CURVE, EightyPlus.TITANIUM)


def test_fig5_standard_curves_stack(benchmark):
    def efficiencies_at(load):
        return [standard_curve(std).efficiency(load) for std in EightyPlus]

    effs = benchmark(efficiencies_at, 0.15)
    print(f"\n  theoretical curves at 15 % load: "
          f"{[f'{100 * e:.1f}%' for e in effs]}")
    assert effs == sorted(effs)
