"""Span tracing: nesting, the two clocks, and the JSON export."""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = tracing.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                with tracer.span("leaf"):
                    pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = tracing.Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_durations_are_positive_and_nested(self):
        tracer = tracing.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert inner.duration_s >= 0
        assert outer.duration_s >= inner.duration_s

    def test_exception_recorded_and_propagated(self):
        tracer = tracing.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        span = tracer.roots[0]
        assert span.wall_end is not None
        assert "RuntimeError" in span.attributes["error"]
        assert tracer._stack == []


class TestSimClock:
    def test_sim_clock_sampled_at_enter_and_exit(self):
        clock = {"t": 100.0}
        tracer = tracing.Tracer()
        with tracer.span("step", sim_clock=lambda: clock["t"]):
            clock["t"] = 400.0
        span = tracer.roots[0]
        assert span.sim_start_s == 100.0
        assert span.sim_end_s == 400.0
        doc = span.to_dict(origin=span.wall_start)
        assert doc["sim_start_s"] == 100.0
        assert doc["sim_duration_s"] == 300.0


class TestExport:
    def test_to_dict_relative_to_origin(self):
        tracer = tracing.Tracer()
        with tracer.span("a", key="value"):
            with tracer.span("b"):
                pass
        doc = tracer.to_dict()
        assert doc["schema"] == tracing.TRACE_SCHEMA
        root = doc["spans"][0]
        assert root["name"] == "a"
        assert root["start_s"] == 0.0
        assert root["attributes"] == {"key": "value"}
        assert root["children"][0]["name"] == "b"
        assert root["children"][0]["start_s"] >= 0.0

    def test_to_json_parses(self):
        tracer = tracing.Tracer()
        with tracer.span("roundtrip"):
            pass
        assert json.loads(tracer.to_json())["spans"][0]["name"] == "roundtrip"

    def test_v2_identity_fields_only_when_set(self):
        bare = tracing.Tracer()
        with bare.span("a"):
            pass
        doc = bare.to_dict()
        assert doc["schema"] == "repro.obs.trace/v2"
        for absent in ("trace_id", "process", "counter_tracks",
                       "subtraces"):
            assert absent not in doc
        labelled = tracing.Tracer(trace_id="sweep-7",
                                  process={"job": "tiny/quiet"})
        labelled_doc = labelled.to_dict()
        assert labelled_doc["trace_id"] == "sweep-7"
        assert labelled_doc["process"] == {"job": "tiny/quiet"}

    def test_counter_tracks_survive_export(self):
        tracer = tracing.Tracer()
        with tracer.span("run"):
            pass
        track = {"name": "fleet_power_w", "t_s": [0.0, 300.0],
                 "values": [10.0, 12.0]}
        tracer.counter_tracks.append(track)
        doc = tracer.to_dict()
        assert doc["counter_tracks"] == [track]
        # The export copies, so later mutation cannot alias into it.
        assert doc["counter_tracks"][0] is not track

    def test_subtraces_survive_export(self):
        parent = tracing.Tracer(trace_id="sweep-7")
        child = tracing.Tracer(trace_id="sweep-7",
                               process={"job": "tiny/quiet", "os_pid": 1})
        with child.span("sweep.job"):
            pass
        parent.subtraces.append(child.to_dict())
        doc = parent.to_dict()
        assert [s["process"]["job"] for s in doc["subtraces"]] == \
            ["tiny/quiet"]
        assert doc["subtraces"][0]["spans"][0]["name"] == "sweep.job"

    def test_spanless_origin_falls_back_to_creation_time(self):
        # Regression guard: the spanless origin used to default to 0.0,
        # the absolute perf_counter epoch, so anything exported against
        # it (counter tracks, stitched subtraces) carried hours-long
        # offsets.  It must be the tracer's creation instant instead.
        tracer = tracing.Tracer()
        tracer.counter_tracks.append(
            {"name": "t", "t_s": [0.0], "values": [1.0]})
        doc = tracer.to_dict()
        assert doc["spans"] == []
        assert doc["counter_tracks"][0]["name"] == "t"
        assert tracer.created_at > 0.0


class TestDisabledPath:
    def test_module_span_is_noop_without_tracer(self):
        assert tracing.get_tracer() is None
        with tracing.span("ignored", attr=1) as span:
            span.set_attribute("more", 2)   # must not raise
        assert span is tracing.NULL_SPAN
        assert not tracing.enabled()

    def test_module_span_records_when_installed(self):
        tracer = tracing.Tracer()
        with tracing.use_tracer(tracer):
            with tracing.span("recorded"):
                pass
        assert tracing.get_tracer() is None
        assert [s.name for s in tracer.roots] == ["recorded"]

    def test_use_tracer_restores_previous(self):
        outer, inner = tracing.Tracer(), tracing.Tracer()
        with tracing.use_tracer(outer):
            with tracing.use_tracer(inner):
                assert tracing.get_tracer() is inner
            assert tracing.get_tracer() is outer
        assert tracing.get_tracer() is None
