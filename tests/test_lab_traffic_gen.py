"""The lab traffic generator (ib_send_bw / iperf3 behaviours)."""

import numpy as np
import pytest

from repro import units
from repro.lab.traffic_gen import (
    IB_SEND_BW_MIN_GBPS,
    Flow,
    TrafficGenerator,
)


class TestToolSelection:
    def test_high_rates_use_ib_send_bw(self, rng):
        gen = TrafficGenerator(rng=rng)
        assert gen.start_flow(100, 1500).tool == "ib_send_bw"
        assert gen.start_flow(IB_SEND_BW_MIN_GBPS, 1500).tool == "ib_send_bw"

    def test_low_rates_use_iperf(self, rng):
        gen = TrafficGenerator(rng=rng)
        assert gen.start_flow(1.0, 1500).tool == "iperf3-udp"
        assert gen.start_flow(0.1, 64).tool == "iperf3-udp"


class TestAchievedRates:
    def test_undershoots_slightly(self, rng):
        gen = TrafficGenerator(rng=rng)
        flows = [gen.start_flow(50, 1500) for _ in range(300)]
        achieved = np.array([f.bit_rate_gbps for f in flows])
        assert np.all(achieved <= 50.0)
        assert np.all(achieved > 49.0)

    def test_flow_packet_rate(self, rng):
        gen = TrafficGenerator(rng=rng, rate_jitter=0.0)
        flow = gen.start_flow(10, 1500)
        assert flow.packet_rate_pps == pytest.approx(
            units.packet_rate(flow.bit_rate_bps, 1500))

    def test_sweep(self, rng):
        gen = TrafficGenerator(rng=rng)
        flows = gen.sweep_rates([2.5, 5, 10], 512)
        assert [round(f.bit_rate_gbps) for f in flows] == [2, 5, 10]
        assert all(f.packet_bytes == 512 for f in flows)


class TestValidation:
    def test_rate_above_nic_rejected(self, rng):
        gen = TrafficGenerator(rng=rng, max_rate_gbps=100)
        with pytest.raises(ValueError, match="line rate"):
            gen.start_flow(400, 1500)

    def test_nonpositive_rate_rejected(self, rng):
        gen = TrafficGenerator(rng=rng)
        with pytest.raises(ValueError):
            gen.start_flow(0, 1500)

    def test_silly_packet_size_rejected(self, rng):
        gen = TrafficGenerator(rng=rng)
        with pytest.raises(ValueError, match="packet size"):
            gen.start_flow(10, 32)
