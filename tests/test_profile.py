"""The kernel profiler: stats, exports, and the zero-cost-off contract.

The headline contract: profiling only *times* code.  Turning it on must
never change a byte of any seeded output -- the determinism tests here
run the same seeded sweep with profiling (and tracing) on and off and
require identical report bytes.
"""

from __future__ import annotations

import json

from repro.obs import metrics, profile, tracing
from repro.obs.profile import Profiler
from repro.sweep import ScenarioMatrix, run_sweep

#: Two fast jobs; enough to exercise every instrumented hot path.
FAST = ScenarioMatrix(
    topologies=("tiny",), traffics=("quiet", "busy"), sleeps=("none",),
    psus=("balanced",), duration_s=2 * 3600.0, step_s=900.0)


class TestProfilerStats:
    def test_nested_regions_split_self_and_cumulative(self):
        prof = Profiler()
        with prof.region("outer"):
            with prof.region("inner"):
                pass
            with prof.region("inner"):
                pass
        doc = prof.to_dict()
        assert doc["schema"] == profile.PROFILE_SCHEMA
        outer, inner = doc["kernels"]["outer"], doc["kernels"]["inner"]
        assert outer["calls"] == 1 and inner["calls"] == 2
        # Outer's cumulative time covers the children; its self time
        # excludes them.
        assert outer["cum_s"] >= inner["cum_s"]
        assert outer["self_s"] <= outer["cum_s"] - inner["cum_s"] + 1e-9
        assert inner["self_s"] >= 0

    def test_reentrant_kernel_accumulates(self):
        prof = Profiler()
        for _ in range(5):
            with prof.region("k"):
                pass
        stat = prof.to_dict()["kernels"]["k"]
        assert stat["calls"] == 5
        assert sum(stat["bucket_counts"]) == 5
        assert len(stat["bucket_counts"]) == len(profile.CALL_BUCKETS) + 1

    def test_paths_record_unique_stacks(self):
        prof = Profiler()
        with prof.region("a"):
            with prof.region("b"):
                pass
        with prof.region("b"):
            pass
        stacks = [p["stack"] for p in prof.to_dict()["paths"]]
        assert stacks == [["a"], ["a", "b"], ["b"]]

    def test_kernel_cap_routes_to_overflow_bucket(self):
        prof = Profiler()
        for i in range(profile.MAX_KERNELS + 10):
            # netpower: ignore[NP-OBS-001] -- deliberately dynamic: this
            # test exercises the cardinality cap the rule exists to
            # protect.
            with prof.region(f"k{i:04d}"):
                pass
        kernels = prof.to_dict()["kernels"]
        assert len(kernels) == profile.MAX_KERNELS + 1
        assert kernels[profile.OVERFLOW_KERNEL]["calls"] == 10

    def test_merge_adds_counts_and_paths(self):
        a, b = Profiler(), Profiler()
        for p in (a, b):
            with p.region("k"):
                with p.region("n"):
                    pass
        a.merge(b)
        doc = a.to_dict()
        assert doc["kernels"]["k"]["calls"] == 2
        assert doc["kernels"]["n"]["calls"] == 2
        by_stack = {tuple(p["stack"]): p["calls"] for p in doc["paths"]}
        assert by_stack[("k", "n")] == 2


class TestExports:
    def _profiled(self):
        prof = Profiler()
        with prof.region("a"):
            with prof.region("b"):
                pass
        return prof

    def test_to_json_round_trips_sorted(self):
        doc = json.loads(self._profiled().to_json())
        assert list(doc["kernels"]) == sorted(doc["kernels"])
        assert doc["bucket_bounds_s"] == list(profile.CALL_BUCKETS)

    def test_folded_lines(self):
        lines = self._profiled().folded().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert lines[1].startswith("a;b ")
        for line in lines:
            int(line.rsplit(" ", 1)[1])  # integer microsecond weight

    def test_empty_folded_is_empty_string(self):
        assert Profiler().folded() == ""

    def test_speedscope_document(self):
        doc = self._profiled().speedscope()
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert frames == ["a", "b"]
        prof_doc = doc["profiles"][0]
        assert prof_doc["type"] == "sampled"
        assert prof_doc["samples"] == [[0], [0, 1]]
        assert len(prof_doc["weights"]) == 2
        json.dumps(doc)

    def test_write_profile_dispatch(self, tmp_path):
        prof = self._profiled()
        native = profile.write_profile(tmp_path / "p.json", prof)
        assert json.loads(native.read_text())["schema"] == \
            profile.PROFILE_SCHEMA
        folded = profile.write_profile(tmp_path / "p.folded", prof)
        assert folded.read_text() == prof.folded()
        scope = profile.write_profile(tmp_path / "p.speedscope.json",
                                      prof)
        assert json.loads(scope.read_text())["profiles"][0]["type"] == \
            "sampled"

    def test_publish_metrics(self):
        prof = self._profiled()
        with metrics.use_registry(metrics.MetricsRegistry()) as registry:
            prof.publish_metrics()
            state = registry.snapshot_state()
        families = state["families"]
        calls = {tuple(s["labels"]): s["value"]
                 for s in families["netpower_profile_calls_total"][
                     "samples"]}
        assert calls == {("a",): 1, ("b",): 1}
        [hist_a, hist_b] = sorted(
            families["netpower_profile_call_seconds"]["samples"],
            key=lambda s: s["labels"])
        assert hist_a["count"] == 1 and hist_b["count"] == 1
        assert hist_a["sum"] >= hist_b["sum"]

    def test_publish_metrics_noop_when_disabled(self):
        assert not metrics.enabled()
        self._profiled().publish_metrics()  # must not raise


class TestActiveProfiler:
    def test_region_is_shared_noop_when_off(self):
        assert not profile.enabled()
        assert profile.region("x") is profile.region("y")
        with profile.region("x"):
            pass  # must not record anywhere

    def test_use_profiler_scopes_and_restores(self):
        prof = Profiler()
        with profile.use_profiler(prof):
            assert profile.enabled()
            with profile.region("seen"):
                pass
        assert not profile.enabled()
        assert profile.region("later") is not None
        assert prof.to_dict()["kernels"]["seen"]["calls"] == 1
        assert "later" not in prof.to_dict()["kernels"]

    def test_set_profiler_returns_previous(self):
        first, second = Profiler(), Profiler()
        assert profile.set_profiler(first) is None
        assert profile.set_profiler(second) is first
        assert profile.set_profiler(None) is second


class TestDeterminism:
    """Profiling on vs off never changes a byte of seeded output."""

    def test_sweep_report_identical_with_profiling_on(self, tmp_path):
        off = tmp_path / "off.json"
        run_sweep(FAST, root_seed=7, workers=1, output=off)

        # Inline (workers=1) with profiling + tracing live ...
        inline = tmp_path / "inline.json"
        with profile.use_profiler(Profiler()) as prof:
            with tracing.use_tracer(tracing.Tracer()):
                run_sweep(FAST, root_seed=7, workers=1, output=inline)
        assert inline.read_bytes() == off.read_bytes()
        # ... and the hot paths actually ran under the profiler.
        inline_kernels = prof.to_dict()["kernels"]
        assert inline_kernels

        # Multi-process: workers ship their per-job profilers home and
        # the parent merges, so the totals match the inline run.
        multi = tmp_path / "multi.json"
        with profile.use_profiler(Profiler()) as multi_prof:
            with tracing.use_tracer(tracing.Tracer()):
                run_sweep(FAST, root_seed=7, workers=2, output=multi)
        assert multi.read_bytes() == off.read_bytes()
        multi_kernels = multi_prof.to_dict()["kernels"]
        assert {k: v["calls"] for k, v in multi_kernels.items()} == \
            {k: v["calls"] for k, v in inline_kernels.items()}

    def test_simulation_hot_paths_record_expected_kernels(self):
        from repro.sweep import JobSpec, run_job

        spec = JobSpec("tiny", "busy", "none", "balanced",
                       2 * 3600.0, 900.0)
        kernels = {}
        for engine in ("vector", "object"):
            with profile.use_profiler(Profiler()) as prof:
                run_job(spec, root_seed=7, engine=engine)
            kernels[engine] = set(prof.to_dict()["kernels"])
        for engine, seen in kernels.items():
            assert {"kernel.apply_traffic", "kernel.advance_counters",
                    "kernel.wall_power"} <= seen, engine
        assert "kernel.snmp_poll" in kernels["vector"]

    def test_engine_results_identical_with_profiling_on(self):
        from repro.sweep import JobSpec, run_job

        spec = JobSpec("tiny", "quiet", "hypnos-50", "balanced",
                       2 * 3600.0, 900.0)
        plain, _ = run_job(spec, root_seed=7, engine="vector")
        with profile.use_profiler(Profiler()):
            profiled, _ = run_job(spec, root_seed=7, engine="vector")
        assert json.dumps(profiled, sort_keys=True) == \
            json.dumps(plain, sort_keys=True)
