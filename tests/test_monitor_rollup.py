"""Rollup storage: ring semantics and streaming-downsampler fidelity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.monitor import RingBuffer, RollupSeries, RollupStore


class TestRingBuffer:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_append_below_capacity_keeps_order(self):
        ring = RingBuffer(8)
        for i in range(5):
            ring.append(float(i), float(10 * i))
        assert len(ring) == 5
        assert ring.evicted == 0
        ts, values = ring.arrays()
        np.testing.assert_array_equal(ts, np.arange(5.0))
        np.testing.assert_array_equal(values, 10.0 * np.arange(5))
        assert ring.last() == (4.0, 40.0)

    def test_wraparound_keeps_newest_in_order(self):
        ring = RingBuffer(4)
        for i in range(10):
            ring.append(float(i), float(i * i))
        assert len(ring) == 4
        assert ring.evicted == 6
        ts, values = ring.arrays()
        np.testing.assert_array_equal(ts, [6.0, 7.0, 8.0, 9.0])
        np.testing.assert_array_equal(values, [36.0, 49.0, 64.0, 81.0])
        assert ring.last() == (9.0, 81.0)

    def test_empty_ring(self):
        ring = RingBuffer(3)
        assert len(ring) == 0
        assert ring.last() is None
        assert len(ring.series()) == 0


class TestStreamingDownsampler:
    def test_matches_offline_resample(self):
        """The streaming bins must equal TimeSeries.resample exactly."""
        rng = np.random.default_rng(5)
        step_s = 300.0
        ts = 1000.0 + step_s * np.arange(200)
        values = 400.0 + 30.0 * rng.standard_normal(200)
        series = RollupSeries("sig", resolutions=(1800.0,))
        for t, v in zip(ts, values):
            series.add(t, v)
        series.finalize()
        rolled = series.rollup_series(1800.0)
        offline = series.raw.series().resample(1800.0, t0=ts[0])
        np.testing.assert_array_equal(rolled.timestamps,
                                      offline.timestamps)
        np.testing.assert_array_equal(rolled.values, offline.values)

    def test_gaps_skip_empty_bins(self):
        series = RollupSeries("sig", resolutions=(10.0,))
        for t in (0.0, 2.0, 35.0, 41.0):
            series.add(t, t)
        series.finalize()
        rolled = series.rollup_series(10.0)
        # Bins 1 and 2 are empty: resample yields NaN there, the
        # streaming rollup simply does not emit them.
        np.testing.assert_array_equal(rolled.timestamps, [5.0, 35.0, 45.0])
        np.testing.assert_array_equal(rolled.values, [1.0, 35.0, 41.0])

    def test_partial_trailing_bin_only_on_finalize(self):
        series = RollupSeries("sig", resolutions=(10.0,))
        series.add(0.0, 1.0)
        series.add(5.0, 3.0)
        assert len(series.rollup_series(10.0)) == 0
        series.finalize()
        rolled = series.rollup_series(10.0)
        np.testing.assert_array_equal(rolled.timestamps, [5.0])
        np.testing.assert_array_equal(rolled.values, [2.0])


class TestRollupStore:
    def test_get_or_create_and_sorted_names(self):
        store = RollupStore()
        store.add("b/sig", 0.0, 1.0)
        store.add("a/sig", 0.0, 2.0)
        store.add("b/sig", 1.0, 3.0)
        assert store.names() == ["a/sig", "b/sig"]
        assert store.get("missing") is None
        assert len(store.get("b/sig").raw) == 2

    def test_memory_is_fixed(self):
        store = RollupStore(raw_capacity=16, rollup_capacity=4,
                            resolutions=(2.0,))
        for i in range(1000):
            store.add("sig", float(i), float(i))
        series = store.get("sig")
        assert len(series.raw) == 16
        assert series.raw.evicted == 1000 - 16
        assert len(series.rollups[2.0].ring) == 4

    def test_flush_metrics_without_registry_is_safe(self):
        store = RollupStore()
        store.add("sig", 0.0, 1.0)
        store.flush_metrics()
        store.finalize()
