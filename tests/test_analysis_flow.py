"""NP-FLOW: interprocedural taint tracking across modules."""

import textwrap

import pytest

from repro.analysis import check_sources


def src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def flow(result) -> list:
    return [f for f in result.findings
            if f.rule_id.startswith("NP-FLOW")]


CLOCK_HELPER = src('''
    """Timing helpers (outside the deterministic packages)."""
    import time


    def raw_ms() -> float:
        """The raw reading."""
        return time.time() * 1e3


    def now_ms() -> float:
        """A second hop: NP-FLOW must follow assignments too."""
        value = raw_ms()
        return value
    ''')


class TestTaintedViaTwoHops:
    def test_exactly_one_finding_with_full_chain(self):
        result = check_sources({
            "obs/clockutil.py": CLOCK_HELPER,
            "core/model.py": src('''
                """Core model."""
                from repro.obs.clockutil import now_ms


                def predict() -> float:
                    """Predict."""
                    stamp = now_ms()
                    return stamp
                '''),
        })
        findings = flow(result)
        assert len(findings) == 1
        message = findings[0].message
        # The full source -> sink witness chain, every hop present.
        assert "time.time()" in message
        assert "repro.obs.clockutil.raw_ms" in message
        assert "repro.obs.clockutil.now_ms" in message
        assert "repro.core.model.predict" in message
        assert findings[0].path == "core/model.py"

    def test_no_finding_outside_sink_scope(self):
        result = check_sources({
            "obs/clockutil.py": CLOCK_HELPER,
            "figures.py": src('''
                """Figures are not under the determinism contract."""
                from repro.obs.clockutil import now_ms


                def annotate() -> float:
                    """Annotate."""
                    return now_ms()
                '''),
        })
        assert flow(result) == []


class TestLaunderThroughDefaultArg:
    def test_default_argument_seeds_the_parameter(self):
        result = check_sources({
            "obs/clockutil.py": src('''
                """Helper."""
                import time


                def stamp(t: float = time.time()) -> float:
                    """The default is evaluated once, at import."""
                    return t
                '''),
            "core/model.py": src('''
                """Core model."""
                from repro.obs.clockutil import stamp


                def predict() -> float:
                    """Predict."""
                    return stamp()
                '''),
        })
        findings = flow(result)
        assert len(findings) == 1
        assert "time.time()" in findings[0].message
        assert "repro.obs.clockutil.stamp" in findings[0].message


class TestTaintedArgumentIntoSink:
    def test_outside_code_passing_taint_in_is_flagged(self):
        result = check_sources({
            "core/model.py": src('''
                """Core model."""


                def record(value: float) -> float:
                    """Record."""
                    return value
                '''),
            "obs/feeder.py": src('''
                """Feeder."""
                import time

                from repro.core.model import record


                def push() -> float:
                    """Push a wall-clock value into core code."""
                    return record(time.time())
                '''),
        })
        findings = flow(result)
        assert len(findings) == 1
        assert findings[0].path == "obs/feeder.py"
        assert "repro.core.model.record" in findings[0].message


class TestSanctionedAndKilledTaint:
    def test_wallclock_allowlist_does_not_seed(self):
        result = check_sources({
            "obs/tracing.py": src('''
                """The sanctioned timing path."""
                import time


                def span_start() -> float:
                    """Span start."""
                    return time.time()
                '''),
            "core/model.py": src('''
                """Core model."""
                from repro.obs.tracing import span_start


                def predict() -> float:
                    """Predict."""
                    return span_start()
                '''),
        })
        assert flow(result) == []

    def test_rng_taint_is_tracked(self):
        result = check_sources({
            "obs/entropy.py": src('''
                """Helper."""
                import random


                def jitter() -> float:
                    """Ambient RNG."""
                    return random.random()
                '''),
            "core/model.py": src('''
                """Core model."""
                from repro.obs.entropy import jitter


                def predict() -> float:
                    """Predict."""
                    return jitter()
                '''),
        })
        findings = flow(result)
        assert len(findings) == 1
        assert "ambient-RNG" in findings[0].message
        assert "random.random()" in findings[0].message

    def test_sorted_kills_order_taint_but_not_value_taint(self):
        result = check_sources({
            "obs/helpers.py": src('''
                """Helper."""


                def hosts(csv: str) -> list:
                    """Sorted set: deterministic order."""
                    return sorted(set(csv.split(",")))


                def raw_hosts(csv: str) -> set:
                    """Unsorted set: hash order."""
                    return set(csv.split(","))
                '''),
            "core/model.py": src('''
                """Core model."""
                from repro.obs.helpers import hosts, raw_hosts


                def rows(csv: str) -> tuple:
                    """Rows."""
                    return (hosts(csv), raw_hosts(csv))
                '''),
        })
        findings = flow(result)
        assert len(findings) == 1
        assert "unordered-iteration" in findings[0].message
        assert "raw_hosts" in findings[0].message


class TestSuppression:
    def test_flow_finding_can_be_suppressed_with_reason(self):
        result = check_sources({
            "obs/clockutil.py": CLOCK_HELPER,
            "core/model.py": src('''
                """Core model."""
                from repro.obs.clockutil import now_ms


                def predict() -> float:
                    """Predict."""
                    return now_ms()  # netpower: ignore[NP-FLOW-001] -- fixture
                '''),
        })
        assert flow(result) == []
        assert [f.rule_id for f in result.suppressed] == ["NP-FLOW-001"]
        assert result.unused_suppressions == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
