"""Energy / cost / emissions reporting."""

import numpy as np
import pytest

from repro import units
from repro.reporting import (
    SWISS_GRID_GCO2_PER_KWH,
    SWISS_TARIFF_PER_KWH,
    energy_report,
    integrate_energy_kwh,
    rank_routers,
    savings_report,
)
from repro.telemetry.traces import TimeSeries


def constant_trace(watts, hours, period_s=300.0):
    t = np.arange(0, hours * 3600 + period_s, period_s)
    return TimeSeries(t, np.full(len(t), float(watts)))


class TestIntegration:
    def test_constant_power(self):
        # 1 kW for 10 hours = 10 kWh.
        assert integrate_energy_kwh(constant_trace(1000, 10)) \
            == pytest.approx(10.0, rel=1e-6)

    def test_nan_gaps_skipped(self):
        trace = constant_trace(1000, 10)
        values = trace.values.copy()
        values[5:10] = np.nan
        holey = TimeSeries(trace.timestamps, values)
        assert integrate_energy_kwh(holey) == pytest.approx(10.0, rel=0.01)

    def test_triangle(self):
        # Linear ramp 0..100 W over one hour = 0.05 kWh.
        t = np.linspace(0, 3600, 61)
        ramp = TimeSeries(t, np.linspace(0, 100, 61))
        assert integrate_energy_kwh(ramp) == pytest.approx(0.05, rel=1e-6)

    def test_too_short(self):
        assert integrate_energy_kwh(
            TimeSeries(np.array([0.0]), np.array([5.0]))) == 0.0


class TestEnergyReport:
    def test_annualisation(self):
        report = energy_report(constant_trace(365, 24), label="x")
        # 365 W around the clock is ~3198 kWh/yr.
        assert report.annualised_kwh == pytest.approx(365 * 8.760, rel=0.01)
        assert report.mean_power_w == pytest.approx(365, rel=0.01)

    def test_cost_and_emissions_scale_with_tariff(self):
        trace = constant_trace(1000, 24)
        cheap = energy_report(trace, tariff_per_kwh=0.10)
        pricey = energy_report(trace, tariff_per_kwh=0.30)
        assert pricey.cost_per_year == pytest.approx(
            3 * cheap.cost_per_year)
        assert cheap.co2e_kg_per_year == pytest.approx(
            cheap.annualised_kwh * SWISS_GRID_GCO2_PER_KWH / 1000)

    def test_str_contains_label(self):
        report = energy_report(constant_trace(100, 24), label="sw042")
        assert "sw042" in str(report)


class TestSavingsReport:
    def test_table3_scale(self):
        # The paper's Titanium row: ~2 kW saved -> ~17.5 MWh/yr.
        report = savings_report(1974, label="titanium")
        assert report.annualised_kwh == pytest.approx(1974 * 8.760,
                                                      rel=0.01)
        assert report.cost_per_year > 3000  # real money
        assert report.co2e_kg_per_year > 1500

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            savings_report(-1)


class TestRanking:
    def test_heaviest_first_and_absent_skipped(self):
        traces = {
            "big": constant_trace(700, 24),
            "small": constant_trace(50, 24),
            "silent": TimeSeries(np.arange(3.0) * 300,
                                 np.full(3, np.nan)),
        }
        ranked = rank_routers(traces)
        assert [r.label for r in ranked] == ["big", "small"]

    def test_top_n(self):
        traces = {f"r{i}": constant_trace(100 + i, 24) for i in range(10)}
        top3 = rank_routers(traces, top=3)
        assert len(top3) == 3
        assert top3[0].label == "r9"

    def test_on_simulated_fleet(self, small_fleet, rng):
        from repro.network import FleetTrafficModel, NetworkSimulation
        traffic = FleetTrafficModel(small_fleet, rng=rng, n_demands=50)
        sim = NetworkSimulation(small_fleet, traffic,
                                rng=np.random.default_rng(4))
        result = sim.run(duration_s=units.hours(6), step_s=1800)
        ranked = rank_routers(
            {h: t.power for h, t in result.snmp.items()})
        assert ranked  # N540X-style silent routers may be missing
        # Core routers outrank access routers.
        heaviest_model = small_fleet.routers[ranked[0].label].model_name
        assert heaviest_model in ("8201-32FH", "NCS-55A1-24H",
                                  "NCS-55A1-24Q6H-SS")
