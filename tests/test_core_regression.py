"""The OLS toolkit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regression import LinearFit, fit_through_points, linear_fit


class TestExactFits:
    def test_perfect_line(self):
        x = np.array([0, 1, 2, 3, 4.0])
        fit = linear_fit(x, 3.0 * x + 7.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(7.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.residual_std == pytest.approx(0.0, abs=1e-9)

    def test_two_points(self):
        fit = linear_fit([1, 3], [2, 8])
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(-1.0)
        assert fit.slope_stderr == 0.0

    @given(st.floats(min_value=-1e3, max_value=1e3),
           st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=50)
    def test_recovers_any_line(self, slope, intercept):
        x = np.linspace(0, 10, 12)
        fit = linear_fit(x, slope * x + intercept)
        assert fit.slope == pytest.approx(slope, abs=1e-6 + 1e-9 * abs(slope))
        assert fit.intercept == pytest.approx(
            intercept, abs=1e-5 + 1e-9 * abs(intercept))


class TestNoisyFits:
    def test_stderr_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        def fit_n(n):
            x = np.linspace(0, 10, n)
            y = 2 * x + 1 + rng.normal(0, 1, n)
            return linear_fit(x, y)
        assert fit_n(400).slope_stderr < fit_n(10).slope_stderr

    def test_slope_within_uncertainty(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 200)
        fit = linear_fit(x, 2 * x + 1 + rng.normal(0, 0.5, 200))
        assert abs(fit.slope - 2.0) < 4 * fit.slope_stderr

    def test_r_squared_degrades_with_noise(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 10, 100)
        clean = linear_fit(x, x + rng.normal(0, 0.1, 100))
        noisy = linear_fit(x, x + rng.normal(0, 5.0, 100))
        assert clean.r_squared > noisy.r_squared


class TestPredict:
    def test_predict_scalar_and_vector(self):
        fit = LinearFit(slope=2.0, intercept=1.0, slope_stderr=0,
                        intercept_stderr=0, r_squared=1, residual_std=0, n=2)
        assert fit.predict(3) == 7.0
        np.testing.assert_allclose(fit.predict_many([0, 1, 2]), [1, 3, 5])


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 2"):
            linear_fit([1], [1])

    def test_constant_x(self):
        with pytest.raises(ValueError, match="identical"):
            linear_fit([2, 2, 2], [1, 2, 3])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2, 3], [1, 2])

    def test_fit_through_points(self):
        fit = fit_through_points([(0, 1), (1, 3), (2, 5)])
        assert fit.slope == pytest.approx(2.0)
        with pytest.raises(ValueError):
            fit_through_points([])
