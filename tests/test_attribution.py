"""Energy attribution ledger: conservation, agreement, byte identity.

The ledger's headline contracts, exercised over the same randomized
seeded event schedules as the incremental-refresh suite (helpers are
imported from :mod:`tests.test_engine_incremental`):

* **Conservation** -- the conserved components sum to the engine's wall
  power within 1e-9 W per router per step, on both engines, for any
  seeded schedule (a Hypothesis property over schedule seeds).
* **Engine agreement** -- object and vector ledgers attribute the same
  joules to the same components wherever their wall power agrees.
* **Byte identity** -- attribution on vs off never changes a simulated
  byte, and the ledger itself is bitwise stable across the incremental
  vs full-rebuild engine paths.
* **Surfaces** -- the ``repro.explain/v1`` document is deterministic,
  the dashboard carries the attribution block exactly when the ledger
  ran, and sweep resume refuses to mix attribution modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor import FleetMonitor, build_snapshot, snapshot_json
from repro.network.attribution import (
    EXPLAIN_SCHEMA,
    build_explain_document,
    explain_to_json,
    render_explain_text,
)
from repro.obs.ledger import (
    COMPONENTS,
    N_CONSERVED,
    RESIDUAL_TOLERANCE_W,
)
from repro.sweep import JobSpec, ScenarioMatrix, run_job, run_sweep
from tests.test_engine_incremental import (
    N_STEPS,
    STEP_S,
    _assert_bitwise_identical,
    _build,
    _random_events,
)


def _run_attr(engine: str, events, attribution: bool = True,
              incremental: bool = True, seed: int = 11):
    """One seeded run with the energy ledger attached (or not)."""
    from repro.network import engine as engine_mod

    saved = engine_mod.INCREMENTAL_REFRESH
    engine_mod.INCREMENTAL_REFRESH = incremental
    try:
        network, sim = _build(seed)
        result = sim.run(duration_s=N_STEPS * STEP_S, step_s=STEP_S,
                         events=list(events), engine=engine,
                         attribution=attribution)
    finally:
        engine_mod.INCREMENTAL_REFRESH = saved
    return network, result


def _hosts():
    return sorted(_build()[0].routers)


class TestConservation:
    @pytest.mark.parametrize("engine", ["object", "vector"])
    @pytest.mark.parametrize("schedule_seed", [101, 303])
    def test_events_never_break_conservation(self, engine, schedule_seed):
        events = _random_events(schedule_seed, _hosts())
        _, result = _run_attr(engine, events)
        ledger = result.ledger
        assert ledger is not None
        assert ledger.n_steps == N_STEPS
        assert ledger.max_residual_w <= RESIDUAL_TOLERANCE_W
        assert ledger.conserved()

    def test_conserved_energy_matches_the_power_trace(self):
        events = _random_events(101, _hosts())
        _, result = _run_attr("vector", events)
        ledger = result.ledger
        conserved_j = float(ledger.fleet_energy_j()[:N_CONSERVED].sum())
        trace_j = float(np.sum(result.total_power.values) * STEP_S)
        assert conserved_j == pytest.approx(trace_j, rel=1e-12)

    @given(schedule_seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=5, deadline=None)
    def test_conservation_is_a_property_of_any_schedule(self, schedule_seed):
        events = _random_events(schedule_seed, _hosts())
        _, result = _run_attr("vector", events)
        ledger = result.ledger
        assert ledger.max_residual_w <= RESIDUAL_TOLERANCE_W


class TestEngineAgreement:
    def test_ledgers_attribute_the_same_joules(self):
        events = _random_events(202, _hosts())
        _, r_obj = _run_attr("object", events)
        _, r_vec = _run_attr("vector", events)
        assert r_obj.ledger.hostnames == r_vec.ledger.hostnames
        np.testing.assert_allclose(r_obj.ledger.energy_j,
                                   r_vec.ledger.energy_j,
                                   rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(r_obj.ledger.last_power_w,
                                   r_vec.ledger.last_power_w,
                                   rtol=1e-9, atol=1e-9)


class TestByteIdentity:
    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_attribution_off_is_bitwise_untouched(self, engine):
        events = _random_events(303, _hosts())
        _, r_off = _run_attr(engine, events, attribution=False)
        _, r_on = _run_attr(engine, events, attribution=True)
        assert r_off.ledger is None
        _assert_bitwise_identical(r_off, r_on)

    def test_incremental_vs_full_rebuild_ledger_is_bitwise(self):
        events = _random_events(101, _hosts())
        _, r_inc = _run_attr("vector", events, incremental=True)
        _, r_full = _run_attr("vector", events, incremental=False)
        np.testing.assert_array_equal(r_inc.ledger.energy_j,
                                      r_full.ledger.energy_j)
        np.testing.assert_array_equal(r_inc.ledger.last_power_w,
                                      r_full.ledger.last_power_w)
        assert r_inc.ledger.max_residual_w == r_full.ledger.max_residual_w


class TestExplainDocument:
    def _document(self, host=None):
        events = _random_events(101, _hosts())
        network, result = _run_attr("vector", events)
        return build_explain_document(
            result.ledger, network, engine="vector",
            scenario={"preset": "synth-200", "seed": 11,
                      "steps": N_STEPS, "step_s": STEP_S},
            host=host)

    def test_document_is_deterministic(self):
        assert explain_to_json(self._document()) == \
            explain_to_json(self._document())

    def test_document_shape(self):
        document = self._document()
        assert document["schema"] == EXPLAIN_SCHEMA
        assert document["conservation"]["ok"] is True
        assert document["components"] == list(COMPONENTS)
        regions = list(document["regions"])
        assert regions == sorted(regions)
        assert len(document["routers"]) <= 10
        text = render_explain_text(document)
        assert "total (conserved)" in text
        assert "engine=vector" in text

    def test_host_drill_down_lists_ports(self):
        host = _hosts()[0]
        document = self._document(host=host)
        router = document["router"]
        assert router["hostname"] == host
        assert router["ports"], "expected per-port rows"
        assert "port" in render_explain_text(document)


class TestDashboard:
    def _snapshot(self, attribution: bool):
        network, sim = _build()
        monitor = FleetMonitor()
        sim.add_observer(monitor)
        sim.run(duration_s=10 * STEP_S, step_s=STEP_S, engine="vector",
                attribution=attribution)
        return build_snapshot(monitor)

    def test_attribution_block_present_exactly_when_ledger_ran(self):
        on = self._snapshot(True)
        off = self._snapshot(False)
        assert off["attribution"] is None
        block = on["attribution"]
        assert block["n_steps"] == 10
        assert set(block["energy_kwh"]) == set(COMPONENTS)
        assert set(block["last_power_w"]) == set(COMPONENTS)
        snapshot_json(on)  # must stay serializable / schema-shaped


class TestSweepAttribution:
    MATRIX = ScenarioMatrix(
        topologies=("tiny",), traffics=("quiet",), sleeps=("none",),
        psus=("balanced",), duration_s=2 * 900.0, step_s=900.0)

    def test_rollup_rides_along_without_touching_the_entry(self):
        spec = JobSpec("tiny", "quiet", "none", "balanced",
                       2 * 900.0, 900.0)
        on, _ = run_job(spec, root_seed=7, engine="vector",
                        attribution=True)
        off, _ = run_job(spec, root_seed=7, engine="vector")
        assert "attribution" not in off
        block = on.pop("attribution")
        assert block["conserved"] is True
        assert block["max_residual_w"] <= RESIDUAL_TOLERANCE_W
        assert on == off

    def test_resume_refuses_to_mix_attribution_modes(self, tmp_path):
        output = tmp_path / "sweep.json"
        run_sweep(self.MATRIX, root_seed=7, workers=1, output=output)
        with pytest.raises(ValueError, match="attribution"):
            run_sweep(self.MATRIX, root_seed=7, workers=1, resume=True,
                      output=output, attribution=True)
