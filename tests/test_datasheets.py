"""Datasheet corpus, extraction, NetBox library, and §3 analyses."""

import numpy as np
import pytest

from repro.datasheets import (
    BROADCOM_ASIC_TREND,
    TREND_MIN_BANDWIDTH_GBPS,
    asic_trend_fit,
    build_corpus,
    datasheet_vs_measured,
    efficiency_trend,
    halving_time_years,
    library_from_corpus,
    measure_accuracy,
    parse_corpus,
    parse_datasheet,
    render_datasheet,
    trend_fit,
    trend_spread_by_year,
)
from repro.datasheets.corpus import DatasheetTruth
from repro.hardware import TABLE1_MEASURED_MEDIAN_W


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(777, np.random.default_rng(11))


@pytest.fixture(scope="module")
def parsed(corpus):
    return parse_corpus(corpus)


class TestCorpus:
    def test_size_and_vendors(self, corpus):
        assert len(corpus) == 777
        vendors = {doc.truth.vendor for doc in corpus.documents.values()}
        assert {"Cisco", "Arista", "Juniper"} <= vendors

    def test_catalog_devices_embedded(self, corpus):
        doc = corpus.document("NCS-55A1-24H")
        assert doc.truth.typical_w == 600
        doc = corpus.document("8201-32FH")
        assert doc.truth.typical_w == 288

    def test_some_sheets_lack_typical_power(self, corpus):
        missing = [d for d in corpus.documents.values()
                   if d.truth.typical_w is None]
        assert len(missing) > 50  # §3.1: power info sometimes absent

    def test_release_years_cisco_only(self, corpus):
        # The paper only managed to collect release dates for Cisco.
        for doc in corpus.documents.values():
            if doc.truth.vendor in ("Arista", "Juniper") \
                    and doc.truth.model not in ("Wedge 100BF-32X",):
                assert doc.truth.release_year is None

    def test_rendering_varies(self, corpus):
        texts = [doc.text for doc in list(corpus.documents.values())[:100]]
        # At least two distinct layouts should appear.
        assert len({t.splitlines()[0].split()[-2:][0] if t else ""
                    for t in texts}) >= 1
        assert any("|" in t for t in texts)          # table style
        assert any("part of the" in t for t in texts)  # prose style

    def test_deterministic_given_seed(self):
        a = build_corpus(100, np.random.default_rng(5))
        b = build_corpus(100, np.random.default_rng(5))
        assert sorted(a.documents) == sorted(b.documents)
        model = sorted(a.documents)[0]
        assert a.documents[model].text == b.documents[model].text

    def test_unknown_model_lookup(self, corpus):
        with pytest.raises(KeyError):
            corpus.document("NOPE-1")


class TestParser:
    def test_extraction_accuracy(self, corpus, parsed):
        acc = measure_accuracy(corpus, parsed)
        # "Reasonably accurate but far from perfect" (§3.2).
        assert acc.typical_rate > 0.9
        assert acc.max_rate > 0.9
        assert acc.bandwidth_rate > 0.8

    def test_kw_normalisation(self, corpus):
        truth = DatasheetTruth(
            model="KW-TEST", vendor="Cisco", series="Test", release_year=2020,
            typical_w=1500, max_w=2500, max_bandwidth_gbps=3200)
        from repro.datasheets.corpus import DatasheetDocument
        text = ("Cisco KW-TEST Data Sheet\n"
                "| Typical power | 1.50 kW |\n"
                "| Maximum power | 2.50 kW |\n"
                "| Switching capacity | 3.2 Tbps |")
        record = parse_datasheet(DatasheetDocument(truth, text, "url"))
        assert record.typical_w == pytest.approx(1500)
        assert record.max_w == pytest.approx(2500)
        assert record.max_bandwidth_gbps == pytest.approx(3200)

    def test_port_sum_derivation(self, corpus):
        from repro.datasheets.corpus import DatasheetDocument
        truth = DatasheetTruth(
            model="SUM-TEST", vendor="Cisco", series="Test",
            release_year=2020, typical_w=300, max_w=400,
            max_bandwidth_gbps=2440)
        text = ("Cisco SUM-TEST -- Product Overview\n\n"
                "Port configuration:\n"
                "  - 24 x 100GE ports\n"
                "  - 1 x 40GE uplink\n\n"
                "Typical power: 300 W")
        record = parse_datasheet(DatasheetDocument(truth, text, "url"))
        assert record.max_bandwidth_gbps == pytest.approx(2440)

    def test_tbd_yields_none(self, corpus):
        from repro.datasheets.corpus import DatasheetDocument
        truth = DatasheetTruth(model="TBD-TEST", vendor="Cisco",
                               series="Test", release_year=None,
                               typical_w=None, max_w=500,
                               max_bandwidth_gbps=100)
        text = ("Cisco TBD-TEST Data Sheet\n"
                "| Typical power | TBD |\n"
                "| Maximum power | 500 W |")
        record = parse_datasheet(DatasheetDocument(truth, text, "url"))
        assert record.typical_w is None
        assert record.max_w == pytest.approx(500)

    def test_provenance_flag(self, parsed):
        assert all(r.source in ("extracted", "failed")
                   for r in parsed.values())


class TestNetboxLibrary:
    def test_one_record_per_model(self, corpus):
        library = library_from_corpus(corpus)
        assert len(library) == len(corpus)

    def test_by_manufacturer(self, corpus):
        library = library_from_corpus(corpus)
        cisco = library.by_manufacturer("Cisco")
        assert all(r.manufacturer == "Cisco" for r in cisco)
        assert len(cisco) > 200

    def test_yamlish_contains_psus(self, corpus):
        library = library_from_corpus(corpus)
        record = library.records["NCS-55A1-24H"]
        assert "PSU0" in record.to_yamlish()

    def test_urls_are_the_crawl_worklist(self, corpus):
        library = library_from_corpus(corpus)
        assert len(library.datasheet_urls()) == len(corpus)


class TestEfficiencyTrend:
    def test_fig2b_points_exist(self, corpus, parsed):
        years = {m: d.truth.release_year
                 for m, d in corpus.documents.items()
                 if d.truth.release_year}
        points = efficiency_trend(parsed, release_years=years)
        assert len(points) > 50
        assert all(p.efficiency_w_per_100g <= 250 for p in points)

    def test_small_routers_excluded(self, corpus, parsed):
        years = {m: d.truth.release_year
                 for m, d in corpus.documents.items()
                 if d.truth.release_year}
        points = efficiency_trend(parsed, release_years=years)
        for point in points:
            record = parsed[point.model]
            assert record.max_bandwidth_gbps > TREND_MIN_BANDWIDTH_GBPS

    def test_datasheet_trend_less_clear_than_asic(self, corpus, parsed):
        # The paper's Fig. 2 contrast, quantified: the ASIC decline is a
        # much cleaner fit than the router-datasheet cloud.
        years = {m: d.truth.release_year
                 for m, d in corpus.documents.items()
                 if d.truth.release_year}
        points = efficiency_trend(parsed, release_years=years)
        datasheet_fit = trend_fit(points)
        asic_fit = asic_trend_fit()
        assert asic_fit.r_squared > datasheet_fit.r_squared + 0.2

    def test_spread_by_year(self, corpus, parsed):
        years = {m: d.truth.release_year
                 for m, d in corpus.documents.items()
                 if d.truth.release_year}
        points = efficiency_trend(parsed, release_years=years)
        spread = trend_spread_by_year(points)
        assert all(mean > 0 for mean, _std in spread.values())

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            trend_fit([])


class TestAsicTrend:
    def test_monotone_decline(self):
        effs = [g.efficiency_w_per_100g for g in BROADCOM_ASIC_TREND]
        assert effs == sorted(effs, reverse=True)

    def test_fit_clearly_negative(self):
        fit = asic_trend_fit()
        assert fit.slope < -1.0
        assert fit.r_squared > 0.8

    def test_halving_time_a_few_years(self):
        assert 2.0 < halving_time_years() < 5.0


class TestTable1:
    def test_rows_and_signs(self, parsed):
        rows = datasheet_vs_measured(parsed, TABLE1_MEASURED_MEDIAN_W)
        assert len(rows) == 8
        by_model = {r.router_model: r for r in rows}
        # Most datasheets overestimate (20-40 %)...
        assert by_model["NCS-55A1-24H"].relative_overestimate \
            == pytest.approx(0.40, abs=0.03)
        assert by_model["ASR-920-24SZ-M"].relative_overestimate \
            == pytest.approx(0.33, abs=0.03)
        # ...but the Cisco 8000 series datasheets *underestimate*.
        assert by_model["8201-32FH"].relative_overestimate \
            == pytest.approx(-0.24, abs=0.03)
        assert by_model["8201-24H8FH"].relative_overestimate \
            == pytest.approx(-0.44, abs=0.03)

    def test_sorted_descending(self, parsed):
        rows = datasheet_vs_measured(parsed, TABLE1_MEASURED_MEDIAN_W)
        over = [r.relative_overestimate for r in rows]
        assert over == sorted(over, reverse=True)

    def test_missing_models_skipped(self, parsed):
        rows = datasheet_vs_measured(parsed, {"GHOST-9000": 100.0})
        assert rows == []
