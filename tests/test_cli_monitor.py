"""The ``netpower monitor`` command: dashboard output and wiring."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.monitor import DASHBOARD_SCHEMA
from repro.monitor.schema import validate as validate_schema

SCHEMA_PATH = (Path(__file__).resolve().parent.parent / "docs"
               / "schemas" / "dashboard.schema.json")


@pytest.fixture(scope="module")
def monitor_outputs(tmp_path_factory):
    """One short monitored run through the real CLI entry point."""
    tmp_path = tmp_path_factory.mktemp("monitor_cli")
    out = tmp_path / "dashboard.json"
    rc = cli_main([
        "monitor", "--days", "0.25", "--out", str(out),
        "--inject-psu-fault",
        "--metrics-out", str(tmp_path / "metrics.json"),
        "--trace-out", str(tmp_path / "monitor.trace.json"),
    ])
    return rc, tmp_path, out


class TestMonitorCommand:
    def test_exit_code_and_files(self, monitor_outputs):
        rc, tmp_path, out = monitor_outputs
        assert rc == 0
        assert out.exists()
        assert (tmp_path / "dashboard.html").exists()
        assert (tmp_path / "metrics.json").exists()
        assert (tmp_path / "monitor.trace.json").exists()

    def test_snapshot_conforms_to_checked_in_schema(self, monitor_outputs):
        _, _, out = monitor_outputs
        snapshot = json.loads(out.read_text())
        assert snapshot["schema"] == DASHBOARD_SCHEMA
        schema = json.loads(SCHEMA_PATH.read_text())
        errors = validate_schema(snapshot, schema)
        assert errors == [], "\n".join(errors)

    def test_injected_fault_lands_in_snapshot(self, monitor_outputs):
        _, _, out = monitor_outputs
        snapshot = json.loads(out.read_text())
        drops = [a for a in snapshot["alerts"]
                 if a["rule"] == "psu-efficiency-drop"]
        assert len(drops) == 1
        assert drops[0]["severity"] == "critical"
        assert drops[0]["resolved_at_s"] is None

    def test_html_is_selfcontained(self, monitor_outputs):
        _, tmp_path, _ = monitor_outputs
        page = (tmp_path / "dashboard.html").read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "<svg" in page                      # inline sparklines
        assert "psu-efficiency-drop" in page
        assert "<script" not in page               # no JS, no assets

    def test_trace_out_uses_chrome_format(self, monitor_outputs):
        _, tmp_path, _ = monitor_outputs
        trace = json.loads((tmp_path / "monitor.trace.json").read_text())
        assert "traceEvents" in trace
        names = [e["name"] for e in trace["traceEvents"]]
        assert "cli.monitor" in names

    def test_metrics_include_monitor_instruments(self, monitor_outputs):
        _, tmp_path, _ = monitor_outputs
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        families = metrics["metrics"]
        assert "netpower_monitor_rollup_samples_total" in families
        alerts = families["netpower_monitor_alerts_total"]
        fired = {tuple(sorted(s["labels"].items())): s["value"]
                 for s in alerts["samples"]}
        assert fired[(("rule", "psu-efficiency-drop"),
                      ("severity", "critical"))] == 1

    def test_rejects_nonpositive_duration(self):
        assert cli_main(["monitor", "--days", "0"]) == 2
        assert cli_main(["monitor", "--step", "-5"]) == 2


class TestValidatorScript:
    def test_script_accepts_and_rejects(self, monitor_outputs, tmp_path):
        import subprocess
        import sys

        _, _, out = monitor_outputs
        script = (Path(__file__).resolve().parent.parent / "scripts"
                  / "validate_dashboard.py")
        ok = subprocess.run([sys.executable, str(script), str(out)],
                            capture_output=True, text=True)
        assert ok.returncode == 0, ok.stderr
        # A version skew is reported as its own failure mode (exit 3),
        # before any field-level validation.
        skewed_path = tmp_path / "skewed.json"
        skewed = json.loads(out.read_text())
        skewed["schema"] = "repro.monitor.dashboard/v999"
        skewed_path.write_text(json.dumps(skewed))
        skew = subprocess.run(
            [sys.executable, str(script), str(skewed_path)],
            capture_output=True, text=True)
        assert skew.returncode == 3
        assert "schema version mismatch" in skew.stderr
        # Field-level violations still exit 1.
        bad_path = tmp_path / "bad.json"
        bad = json.loads(out.read_text())
        del bad["alerts"]
        bad_path.write_text(json.dumps(bad))
        rejected = subprocess.run(
            [sys.executable, str(script), str(bad_path)],
            capture_output=True, text=True)
        assert rejected.returncode == 1
        assert "schema violation" in rejected.stderr
