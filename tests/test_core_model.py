"""The power model object: evaluation semantics and serialisation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.model import (
    FittedValue,
    InterfaceClassKey,
    InterfaceModel,
    InterfaceState,
    PowerModel,
    fitted,
)


def make_interface_model(key=None, p_port=0.32, p_in=0.02, p_up=0.19,
                         e_bit=22.0, e_pkt=58.0, p_off=0.37):
    if key is None:
        key = InterfaceClassKey("QSFP28", "Passive DAC", 100)
    return InterfaceModel(
        key=key,
        p_port_w=fitted(p_port, 0.01), p_trx_in_w=fitted(p_in, 0.01),
        p_trx_up_w=fitted(p_up, 0.01), e_bit_pj=fitted(e_bit, 1),
        e_pkt_nj=fitted(e_pkt, 2), p_offset_w=fitted(p_off, 0.05))


@pytest.fixture
def model():
    pm = PowerModel(router_model="NCS-55A1-24H",
                    p_base_w=fitted(320.0, 1.0))
    pm.add_interface_model(make_interface_model())
    pm.add_interface_model(make_interface_model(
        key=InterfaceClassKey("QSFP28", "Passive DAC", 25),
        p_port=0.10, p_up=0.08, e_bit=21, e_pkt=55, p_off=0.21))
    return pm


class TestInterfaceClassKey:
    def test_str_parse_round_trip(self):
        key = InterfaceClassKey("QSFP28", "Passive DAC", 100)
        assert InterfaceClassKey.parse(str(key)) == key

    @given(st.sampled_from(["SFP", "SFP+", "QSFP28", "QSFP-DD"]),
           st.sampled_from(["LR4", "Passive DAC", "T"]),
           st.sampled_from([0.1, 1.0, 10.0, 25.0, 100.0, 400.0]))
    def test_round_trip_any(self, port, reach, speed):
        key = InterfaceClassKey(port, reach, speed)
        assert InterfaceClassKey.parse(str(key)) == key

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            InterfaceClassKey.parse("nonsense")


class TestFittedValue:
    def test_float_coercion(self):
        assert float(fitted(3.5)) == 3.5

    def test_uncertainty_flag(self):
        assert fitted(1.0, 0.1).has_uncertainty
        assert not fitted(1.0).has_uncertainty


class TestInterfaceModelEvaluation:
    def test_state_ladder(self):
        m = make_interface_model()
        unplugged = m.interface_power_w(plugged=False, admin_up=False,
                                        link_up=False)
        plugged = m.interface_power_w(plugged=True, admin_up=False,
                                      link_up=False)
        admin = m.interface_power_w(plugged=True, admin_up=True,
                                    link_up=False)
        up = m.interface_power_w(plugged=True, admin_up=True, link_up=True)
        assert unplugged == 0.0
        assert plugged == pytest.approx(0.02)
        assert admin == pytest.approx(0.02 + 0.32)
        assert up == pytest.approx(0.02 + 0.32 + 0.19)

    def test_traffic_terms(self):
        m = make_interface_model()
        idle_up = m.interface_power_w(plugged=True, admin_up=True,
                                      link_up=True)
        loaded = m.interface_power_w(plugged=True, admin_up=True,
                                     link_up=True, bps=100e9, pps=8.13e6)
        expected = 0.37 + 22e-12 * 100e9 + 58e-9 * 8.13e6
        assert loaded - idle_up == pytest.approx(expected)

    def test_no_dynamic_power_when_link_down(self):
        m = make_interface_model()
        assert m.interface_power_w(plugged=True, admin_up=True,
                                   link_up=False, bps=1e9, pps=1e5) \
            == pytest.approx(0.02 + 0.32)

    def test_trx_total(self):
        assert make_interface_model().p_trx_total_w == pytest.approx(0.21)


class TestPowerModelEvaluation:
    def test_base_only(self, model):
        assert model.predict_power_w([]) == pytest.approx(320.0)

    def test_static_plus_dynamic_decomposition(self, model):
        key = InterfaceClassKey("QSFP28", "Passive DAC", 100)
        states = [InterfaceState(key=key, bps=50e9, pps=4e6)]
        total = model.predict_power_w(states)
        static = model.static_power_w(states)
        dynamic = model.dynamic_power_w(states)
        assert total == pytest.approx(static + dynamic)
        assert dynamic > 0

    def test_fallback_same_port_nearest_speed(self, model):
        key = InterfaceClassKey("QSFP28", "Passive DAC", 50)
        resolved = model.interface_model(key)
        # Nearest characterised speed wins (25 is nearer 50 than 100).
        assert resolved.p_port_w.value == pytest.approx(0.10)
        assert resolved.key == key

    def test_fallback_same_speed_other_media(self, model):
        key = InterfaceClassKey("QSFP28", "LR4", 100)
        resolved = model.interface_model(key)
        assert resolved.p_port_w.value == pytest.approx(0.32)

    def test_empty_model_raises(self):
        empty = PowerModel(router_model="x", p_base_w=fitted(1.0))
        with pytest.raises(KeyError):
            empty.interface_model(InterfaceClassKey("SFP", "T", 1))


class TestSerialisation:
    def test_round_trip(self, model):
        restored = PowerModel.from_dict(model.to_dict())
        assert restored.router_model == model.router_model
        assert restored.p_base_w.value == model.p_base_w.value
        assert set(restored.interfaces) == set(model.interfaces)
        key = InterfaceClassKey("QSFP28", "Passive DAC", 100)
        assert restored.interfaces[key].e_bit_pj.value == pytest.approx(22.0)
        assert restored.interfaces[key].e_bit_pj.stderr == pytest.approx(1.0)

    def test_json_compatible(self, model):
        import json
        text = json.dumps(model.to_dict())
        restored = PowerModel.from_dict(json.loads(text))
        assert restored.p_base_w.value == pytest.approx(320.0)

    def test_nan_stderr_survives(self):
        pm = PowerModel(router_model="x", p_base_w=fitted(10.0))
        pm.add_interface_model(make_interface_model())
        restored = PowerModel.from_dict(pm.to_dict())
        assert restored.p_base_w.value == 10.0
        assert math.isnan(restored.p_base_w.stderr)
