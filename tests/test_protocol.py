"""The Autopower wire protocol: framing, sequencing, deduplication."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lab.power_meter import PowerSample
from repro.telemetry.autopower import AutopowerServer
from repro.telemetry.protocol import (
    ChunkAck,
    ControlPoll,
    ControlReply,
    FrameDecoder,
    MeasurementChunk,
    ProtocolServer,
    RegisterReply,
    RegisterRequest,
    decode_payload,
    encode,
)


def chunk(unit="u1", seq=0, n=5, t0=0.0):
    samples = [PowerSample(timestamp_s=t0 + 0.5 * i, power_w=100.0 + i)
               for i in range(n)]
    return MeasurementChunk.from_samples(unit, seq, samples)


class TestEncoding:
    @pytest.mark.parametrize("message", [
        RegisterRequest(unit_id="u1"),
        RegisterReply(unit_id="u1", accepted=True),
        chunk(),
        ChunkAck(unit_id="u1", seq=3, accepted=5),
        ControlPoll(unit_id="u1"),
        ControlReply(unit_id="u1", measure=False),
    ])
    def test_round_trip(self, message):
        frames = FrameDecoder().feed(encode(message))
        assert frames == [message]

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown message type"):
            decode_payload(b'{"_type": "warp-drive"}')

    def test_chunk_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            MeasurementChunk(unit_id="u", seq=0,
                             timestamps=(1.0,), power_w=(1.0, 2.0))

    def test_chunk_samples_round_trip(self):
        original = chunk(n=3)
        samples = original.samples()
        rebuilt = MeasurementChunk.from_samples("u1", 0, samples)
        assert rebuilt.timestamps == original.timestamps
        assert rebuilt.power_w == original.power_w


class TestFraming:
    def test_segmented_stream(self):
        # Frames must survive arbitrary segmentation (TCP reality).
        wire = b"".join(encode(chunk(seq=i)) for i in range(3))
        decoder = FrameDecoder()
        received = []
        for i in range(0, len(wire), 7):  # 7-byte dribbles
            received.extend(decoder.feed(wire[i:i + 7]))
        assert [m.seq for m in received] == [0, 1, 2]
        assert decoder.pending_bytes == 0

    def test_concatenated_burst(self):
        wire = encode(RegisterRequest("u1")) + encode(ControlPoll("u1"))
        messages = FrameDecoder().feed(wire)
        assert len(messages) == 2

    def test_partial_frame_waits(self):
        wire = encode(chunk())
        decoder = FrameDecoder()
        assert decoder.feed(wire[:10]) == []
        assert decoder.pending_bytes == 10
        assert len(decoder.feed(wire[10:])) == 1

    def test_oversized_frame_rejected(self):
        import struct
        evil = struct.pack(">I", 2 ** 31)
        with pytest.raises(ValueError, match="oversized"):
            FrameDecoder().feed(evil)

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=10),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=30)
    def test_any_segmentation_preserves_order(self, seqs, step):
        wire = b"".join(encode(chunk(seq=s, n=2)) for s in seqs)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(wire), step):
            out.extend(decoder.feed(wire[i:i + step]))
        assert [m.seq for m in out] == seqs


class TestDispatchAndDedup:
    def test_register_and_control(self):
        server = ProtocolServer()
        reply = server.handle(RegisterRequest("unit-9"))
        assert isinstance(reply, RegisterReply) and reply.accepted
        control = server.handle(ControlPoll("unit-9"))
        assert isinstance(control, ControlReply) and control.measure
        server.server.stop_measurement("unit-9")
        assert not server.handle(ControlPoll("unit-9")).measure

    def test_exactly_once_despite_retransmission(self):
        server = ProtocolServer()
        server.handle(RegisterRequest("u"))
        first = server.handle(chunk(unit="u", seq=0, n=10))
        assert first.accepted == 10 and not first.duplicate
        # The ack is lost; the client retransmits the same chunk.
        second = server.handle(chunk(unit="u", seq=0, n=10))
        assert second.duplicate and second.accepted == 0
        assert len(server.server.download("u")) == 10

    def test_sequence_progresses(self):
        server = ProtocolServer()
        for seq in range(4):
            ack = server.handle(chunk(unit="u", seq=seq, n=3,
                                      t0=seq * 10.0))
            assert not ack.duplicate
        assert len(server.server.download("u")) == 12

    def test_unhandleable_message(self):
        server = ProtocolServer()
        with pytest.raises(TypeError):
            server.handle(RegisterReply(unit_id="u", accepted=True))

    def test_byte_level_round_trip(self):
        server = ProtocolServer()
        wire = encode(RegisterRequest("u")) + encode(chunk(unit="u", n=4))
        reply_bytes = server.handle_bytes(wire)
        replies = FrameDecoder().feed(reply_bytes)
        assert isinstance(replies[0], RegisterReply)
        assert isinstance(replies[1], ChunkAck)
        assert replies[1].accepted == 4

    def test_wraps_existing_server(self):
        backing = AutopowerServer()
        server = ProtocolServer(backing)
        server.handle(chunk(unit="u", seq=0, n=2))
        assert len(backing.download("u")) == 2
