"""Rate adaptation on top of the per-speed interface classes."""

import numpy as np
import pytest

from repro import units
from repro.network import FleetTrafficModel
from repro.sleep import (
    RatePlan,
    apply_rate_plan,
    plan_rate_adaptation,
)


@pytest.fixture
def matrix(small_fleet):
    return FleetTrafficModel(small_fleet, rng=np.random.default_rng(13),
                             n_demands=150).matrix


class TestPlanning:
    def test_low_load_links_downgrade(self, small_fleet, matrix):
        plan = plan_rate_adaptation(small_fleet, matrix, headroom=4.0)
        downgraded = plan.downgraded()
        assert downgraded, "nothing downgraded on a ~1 % utilised network"
        for decision in downgraded:
            assert decision.new_speed_gbps < decision.old_speed_gbps

    def test_headroom_respected(self, small_fleet, matrix):
        headroom = 4.0
        plan = plan_rate_adaptation(small_fleet, matrix, headroom=headroom)
        loads = matrix.base_link_loads()
        for decision in plan.downgraded():
            load_gbps = units.bps_to_gbps(loads.get(decision.link_id, 0.0))
            assert decision.new_speed_gbps >= headroom * load_gbps

    def test_tighter_headroom_downgrades_less_deep(self, small_fleet,
                                                   matrix):
        relaxed = plan_rate_adaptation(small_fleet, matrix, headroom=2.0)
        strict = plan_rate_adaptation(small_fleet, matrix, headroom=50.0)
        assert strict.total_saving_w <= relaxed.total_saving_w

    def test_savings_are_positive_and_modest(self, small_fleet, matrix):
        plan = plan_rate_adaptation(small_fleet, matrix)
        total = small_fleet.total_wall_power_w()
        assert 0 < plan.total_saving_w < 0.05 * total

    def test_internal_only_by_default(self, small_fleet, matrix):
        plan = plan_rate_adaptation(small_fleet, matrix)
        internal_ids = {l.link_id for l in small_fleet.internal_links()}
        assert all(d.link_id in internal_ids for d in plan.decisions)

    def test_headroom_validation(self, small_fleet, matrix):
        with pytest.raises(ValueError):
            plan_rate_adaptation(small_fleet, matrix, headroom=0.5)


class TestApplication:
    def test_applying_changes_hardware_and_power(self, small_fleet,
                                                 matrix):
        before = small_fleet.total_wall_power_w()
        plan = plan_rate_adaptation(small_fleet, matrix, headroom=4.0)
        changed = apply_rate_plan(small_fleet, plan)
        after = small_fleet.total_wall_power_w()
        assert changed == len(plan.downgraded())
        measured_saving = before - after
        # The plan's arithmetic must match the truth engine's response
        # (both use the per-speed interface classes).
        assert measured_saving == pytest.approx(plan.total_saving_w,
                                                rel=0.25, abs=1.0)

    def test_applied_speeds_visible_on_ports(self, small_fleet, matrix):
        plan = plan_rate_adaptation(small_fleet, matrix, headroom=4.0)
        apply_rate_plan(small_fleet, plan)
        links = {l.link_id: l for l in small_fleet.links}
        for decision in plan.downgraded():
            link = links[decision.link_id]
            assert link.speed_gbps == decision.new_speed_gbps
            port = small_fleet.port_of(link.a)
            assert port.speed_gbps == decision.new_speed_gbps

    def test_topology_untouched(self, small_fleet, matrix):
        """Unlike sleeping, adaptation keeps every link up."""
        import networkx as nx
        plan = plan_rate_adaptation(small_fleet, matrix)
        apply_rate_plan(small_fleet, plan)
        graph = nx.Graph(small_fleet.internal_graph())
        assert nx.is_connected(graph)
        for link in small_fleet.internal_links():
            assert small_fleet.port_of(link.a).link_up

    def test_empty_plan_is_noop(self, small_fleet):
        before = small_fleet.total_wall_power_w()
        assert apply_rate_plan(small_fleet, RatePlan()) == 0
        assert small_fleet.total_wall_power_w() == pytest.approx(before)


class TestHotStandby:
    """The §9.4 hot-standby estimate sits between naive and realistic."""

    def test_between_single_and_nothing(self, fleet):
        from repro.psu_opt import (clean_exports, hot_standby_savings,
                                   single_psu_savings)
        from repro.telemetry.snmp import SnmpCollector
        points = clean_exports(
            SnmpCollector(list(fleet.routers.values()),
                          detailed_hosts=[]).sensor_exports())
        single = single_psu_savings(points)
        standby = hot_standby_savings(points)
        # Keeping the standby powered costs its idle losses, so the
        # hot-standby savings are strictly smaller -- but still positive.
        assert 0 < standby.saved_w < single.saved_w
        assert standby.fraction > 0.01
