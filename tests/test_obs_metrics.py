"""The metrics registry, instruments, and Prometheus/JSON exporters."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import export, metrics


@pytest.fixture
def registry():
    reg = metrics.MetricsRegistry()
    with metrics.use_registry(reg):
        yield reg


class TestInstruments:
    def test_counter_goes_up(self, registry):
        fam = registry.counter("test_events_total", "events")
        fam.default().inc()
        fam.default().inc(3)
        assert fam.default().value == 4

    def test_counter_rejects_negative(self, registry):
        fam = registry.counter("test_neg_total")
        with pytest.raises(ValueError):
            fam.default().inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        fam = registry.gauge("test_level")
        g = fam.default()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_labels_split_children(self, registry):
        fam = registry.counter("test_by_kind_total", labels=("kind",))
        fam.labels(kind="a").inc()
        fam.labels(kind="a").inc()
        fam.labels(kind="b").inc()
        assert fam.labels(kind="a").value == 2
        assert fam.labels(kind="b").value == 1

    def test_wrong_label_set_rejected(self, registry):
        fam = registry.counter("test_labeled_total", labels=("kind",))
        with pytest.raises(ValueError):
            fam.labels(other="x")
        with pytest.raises(ValueError):
            fam.labels()
        with pytest.raises(ValueError):
            fam.default()

    def test_conflicting_reregistration_raises(self, registry):
        registry.counter("test_conflict_total")
        with pytest.raises(ValueError):
            registry.gauge("test_conflict_total")
        with pytest.raises(ValueError):
            registry.counter("test_conflict_total", labels=("kind",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("0bad")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels=("bad-label",))


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = metrics.Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0):
            h.observe(v)
        # v <= le: 1.0 lands in the le="1" bucket, 2.0 in le="2".
        assert list(h.bucket_counts) == [2, 2, 1]
        assert list(h.cumulative_counts()) == [2, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(8.0)

    def test_observe_many_matches_loop(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 3, size=500)
        batched = metrics.Histogram(buckets=(0.5, 1.0, 2.0))
        looped = metrics.Histogram(buckets=(0.5, 1.0, 2.0))
        batched.observe_many(values)
        for v in values:
            looped.observe(v)
        assert list(batched.bucket_counts) == list(looped.bucket_counts)
        assert batched.count == looped.count
        assert batched.sum == pytest.approx(looped.sum)

    def test_observe_many_empty_is_noop(self):
        h = metrics.Histogram(buckets=(1.0,))
        h.observe_many([])
        assert h.count == 0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            metrics.Histogram(buckets=())
        with pytest.raises(ValueError):
            metrics.Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            metrics.Histogram(buckets=(1.0, float("inf")))


class TestDisabledPath:
    def test_handles_are_noops_without_registry(self):
        assert metrics.get_registry() is None
        handle = metrics.counter("test_noop_total_xyz", "noop")
        handle.inc()          # must not raise
        assert handle.labels() is metrics.NOOP
        assert not metrics.enabled()

    def test_registry_scoping_restores_previous(self):
        outer = metrics.MetricsRegistry()
        inner = metrics.MetricsRegistry()
        with metrics.use_registry(outer):
            with metrics.use_registry(inner):
                assert metrics.get_registry() is inner
            assert metrics.get_registry() is outer
        assert metrics.get_registry() is None

    def test_declared_handles_resolve_when_enabled(self):
        handle = metrics.counter("test_resolving_total_xyz", "resolves")
        with metrics.use_registry(metrics.MetricsRegistry()) as reg:
            handle.inc(2)
            assert reg.get("test_resolving_total_xyz").default().value == 2
        handle.inc(99)  # disabled again: silently dropped
        with metrics.use_registry(metrics.MetricsRegistry()) as reg:
            # A fresh registry starts from zero (register_declared).
            assert reg.get("test_resolving_total_xyz").default().value == 0


class TestExport:
    def test_prometheus_text_format(self, registry):
        registry.counter("test_export_total", "help text").default().inc(2)
        fam = registry.gauge("test_export_level", labels=("site",))
        fam.labels(site="pop1").set(1.5)
        text = export.render_prometheus(registry)
        assert "# HELP test_export_total help text" in text
        assert "# TYPE test_export_total counter" in text
        assert "test_export_total 2" in text
        assert 'test_export_level{site="pop1"} 1.5' in text

    def test_prometheus_histogram_series(self, registry):
        fam = registry.histogram("test_lat_seconds", buckets=(0.1, 1.0))
        h = fam.default()
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = export.render_prometheus(registry)
        assert 'test_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'test_lat_seconds_bucket{le="1"} 2' in text
        assert 'test_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "test_lat_seconds_count 3" in text
        assert "test_lat_seconds_sum 5.55" in text

    def test_label_values_escaped(self, registry):
        fam = registry.counter("test_escape_total", labels=("path",))
        fam.labels(path='a"b\\c').inc()
        text = export.render_prometheus(registry)
        assert 'path="a\\"b\\\\c"' in text

    def test_json_snapshot_roundtrips(self, registry, tmp_path):
        registry.counter("test_snap_total").default().inc(3)
        target = tmp_path / "metrics.json"
        export.write_metrics(target, registry)
        doc = json.loads(target.read_text())
        assert doc["schema"] == export.SNAPSHOT_SCHEMA
        sample = doc["metrics"]["test_snap_total"]["samples"][0]
        assert sample["value"] == 3

    def test_prom_file_extension(self, registry, tmp_path):
        registry.counter("test_file_total").default().inc()
        target = tmp_path / "metrics.prom"
        export.write_metrics(target, registry)
        assert "test_file_total 1" in target.read_text()
