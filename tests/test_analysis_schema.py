"""NP-SCHEMA fixtures plus reporter output checks."""

import json
import textwrap

import pytest

from repro.analysis import (REPORT_SCHEMA, check_source, render_json,
                            render_rule_listing, render_text)


def check(text: str, path: str = "zoo/fixture.py"):
    return check_source(textwrap.dedent(text).lstrip("\n"), path)


def ids(result) -> list:
    return [finding.rule_id for finding in result.findings]


class TestSchemaRule:
    def test_dump_without_version_flagged(self):
        result = check('''
            """Mod."""
            import json


            def save(payload: dict) -> str:
                """Save."""
                return json.dumps(payload)
            ''')
        assert ids(result) == ["NP-SCHEMA-001"]

    def test_json_dump_to_file_flagged_too(self):
        result = check('''
            """Mod."""
            import json


            def save(payload: dict, handle: object) -> None:
                """Save."""
                json.dump(payload, handle)
            ''')
        assert ids(result) == ["NP-SCHEMA-001"]

    @pytest.mark.parametrize("constant", [
        'SCHEMA = "repro.fixture/v1"',
        'DASHBOARD_SCHEMA = "repro.fixture.dash/v2"',
        'FORMAT_VERSION = "3"',
    ])
    def test_version_constant_satisfies_rule(self, constant):
        result = check(f'''
            """Mod."""
            import json

            {constant}


            def save(payload: dict) -> str:
                """Save."""
                return json.dumps(payload)
            ''')
        assert "NP-SCHEMA-001" not in ids(result)

    def test_non_string_version_does_not_count(self):
        result = check('''
            """Mod."""
            import json

            FORMAT_VERSION = 1


            def save(payload: dict) -> str:
                """Save."""
                return json.dumps(payload)
            ''')
        assert ids(result) == ["NP-SCHEMA-001"]

    def test_json_loads_is_not_a_dump(self):
        result = check('''
            """Mod."""
            import json


            def load(text: str) -> dict:
                """Load."""
                return json.loads(text)
            ''')
        assert "NP-SCHEMA-001" not in ids(result)


class TestReporters:
    SOURCE = textwrap.dedent('''
        """Mod."""
        import time


        def f() -> None:
            """F."""
            time.time()
        ''').lstrip("\n")

    def test_text_report_lines(self):
        result = check_source(self.SOURCE, "core/fixture.py")
        text = render_text(result)
        assert "core/fixture.py:7:4: NP-DET-001 [error]" in text
        assert "checked 1 file(s): 1 finding(s)" in text

    def test_json_report_is_versioned_and_sorted(self):
        result = check_source(self.SOURCE, "core/fixture.py")
        document = json.loads(render_json(result))
        assert document["schema"] == REPORT_SCHEMA
        assert document["counts"]["findings"] == 1
        finding = document["findings"][0]
        assert finding["rule"] == "NP-DET-001"
        assert finding["path"] == "core/fixture.py"

    def test_json_report_is_byte_stable(self):
        a = render_json(check_source(self.SOURCE, "core/fixture.py"))
        b = render_json(check_source(self.SOURCE, "core/fixture.py"))
        assert a == b

    def test_unused_suppressions_surface_in_text(self):
        source = ('"""Mod."""\n\n\ndef f() -> None:\n    """F."""\n'
                  '    return None  # netpower: ignore[NP-DET-001] -- stale\n')
        result = check_source(source, "core/fixture.py")
        text = render_text(result)
        assert "NP-SUPPRESS" in text
        assert "matched no finding" in text

    def test_rule_listing_contains_every_family(self):
        listing = render_rule_listing()
        for family in ("NP-DET", "NP-UNIT", "NP-API", "NP-SCHEMA"):
            assert family in listing


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
