"""The ``netpower serve`` contract: determinism, tiering, endpoints.

The headline guarantees under test:

* responses are **byte**-deterministic -- identical request bodies get
  identical response bytes, across repeats, across interleaved
  traffic, and across full server restarts;
* the cheap (cache) tier is bit-equal to the full (batched matrix)
  tier, so the route taken never shows in the payload;
* metrics on/off changes observability only, never response bodies.

The synth-200 fleet load is the expensive part, so most tests share
one preloaded :class:`~repro.serve.state.FleetService` injected via a
patched loader; the restart-determinism test does two real loads.
"""

from __future__ import annotations

import asyncio
import json
import threading
from unittest import mock

import pytest

from repro.obs import metrics as obs_metrics
from repro.serve import NetpowerServer, ServeConfig
from repro.serve.batching import evaluate_group
from repro.serve.cache import PredictionCache
from repro.serve.schemas import (RequestError, parse_predict_request,
                                 parse_whatif_request)
from repro.serve.state import FleetService

PRESET = "synth-200"
SEED = 42

_SERVICE = None


def shared_service() -> FleetService:
    """One real fleet load, shared by every injected-server test."""
    global _SERVICE
    if _SERVICE is None:
        _SERVICE = FleetService.load(PRESET, SEED, warmup_steps=2)
    return _SERVICE


def run_with_server(test_coro, config: ServeConfig = None):
    """Boot an injected-service server, run the coroutine, tear down."""
    cfg = config or ServeConfig(preset=PRESET, seed=SEED, port=0,
                                warmup_steps=2)
    service = shared_service()

    async def main():
        with mock.patch.object(FleetService, "load",
                               lambda *a, **k: service):
            server = NetpowerServer(cfg)
            await server.start()
            await asyncio.wait_for(server._ready.wait(), timeout=60)
            try:
                return await test_coro(server)
            finally:
                await server.shutdown()

    return asyncio.run(main())


async def http(port: int, method: str, path: str, body: bytes = b""):
    """One exchange on a fresh connection -> (status, headers, payload)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        writer.write(head + body)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await reader.readexactly(length) if length else b""
        return status, headers, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def predict_body(model: str, n_ifaces: int = 2, scale: float = 1.0,
                 trx: str = "QSFP28-100G-DAC") -> bytes:
    interfaces = [{
        "name": f"et{i}", "trx": trx,
        "octet_rate_rx": scale * (1.0e9 + 7.0e7 * i),
        "octet_rate_tx": scale * (8.0e8 + 3.0e7 * i),
        "packet_rate_rx": scale * (1.2e5 + 900.0 * i),
        "packet_rate_tx": scale * (1.0e5 + 700.0 * i),
    } for i in range(n_ifaces)]
    return json.dumps({"routers": [
        {"router_model": model, "interfaces": interfaces}]}).encode()


def first_model() -> str:
    return sorted(shared_service().models)[0]


# -- byte determinism ---------------------------------------------------------


def test_repeat_request_is_byte_identical_and_cached():
    body = predict_body(first_model())

    async def scenario(server):
        status, headers, first = await http(
            server.bound_port, "POST", "/predict", body)
        assert status == 200
        assert headers["x-netpower-tier"] == "full"
        status, headers, second = await http(
            server.bound_port, "POST", "/predict", body)
        assert status == 200
        assert headers["x-netpower-tier"] == "cached"
        assert second == first

    run_with_server(scenario)


def test_interleaved_traffic_keeps_tiers_bit_equal():
    """Replays under concurrent unrelated load must not move a byte."""
    model = first_model()
    bodies = [predict_body(model, n_ifaces=1 + (k % 4),
                           scale=0.5 + 0.1 * k) for k in range(12)]

    async def scenario(server):
        port = server.bound_port
        first_round = await asyncio.gather(*[
            http(port, "POST", "/predict", body) for body in bodies])
        for status, _headers, _payload in first_round:
            assert status == 200
        # Replay every body concurrently, interleaved with fresh
        # never-seen bodies that force full-tier batching around them.
        fresh = [predict_body(model, n_ifaces=3, scale=2.0 + 0.01 * k)
                 for k in range(12)]
        mixed = []
        for body, extra in zip(bodies, fresh):
            mixed.append(body)
            mixed.append(extra)
        second_round = await asyncio.gather(*[
            http(port, "POST", "/predict", body) for body in mixed])
        replayed = second_round[::2]
        for (_s1, _h1, before), (s2, headers, after) in zip(
                first_round, replayed):
            assert s2 == 200
            assert headers["x-netpower-tier"] == "cached"
            assert after == before
        assert server.cache.hits > 0
        assert server.batcher.flushed_entries > 0

    run_with_server(scenario)


def test_restart_byte_determinism():
    """Two real loads serve byte-identical /fleet and /predict."""
    config = ServeConfig(preset=PRESET, seed=SEED, port=0,
                         warmup_steps=2)
    body = predict_body("8201-32FH")

    async def boot_and_sample():
        server = NetpowerServer(config)
        await server.start()
        await asyncio.wait_for(server._ready.wait(), timeout=120)
        try:
            _s, _h, fleet = await http(server.bound_port, "GET", "/fleet")
            _s, _h, predict = await http(
                server.bound_port, "POST", "/predict", body)
            return fleet, predict
        finally:
            await server.shutdown()

    fleet_a, predict_a = asyncio.run(boot_and_sample())
    fleet_b, predict_b = asyncio.run(boot_and_sample())
    assert fleet_a == fleet_b
    assert predict_a == predict_b


def test_metrics_toggle_leaves_bodies_identical():
    body = predict_body(first_model())

    async def scenario(server):
        port = server.bound_port
        _s, _h, predict = await http(port, "POST", "/predict", body)
        _s, _h, fleet = await http(port, "GET", "/fleet")
        status, _h, _p = await http(port, "GET", "/metrics")
        return predict, fleet, status

    with obs_metrics.use_registry(obs_metrics.MetricsRegistry()):
        predict_on, fleet_on, metrics_on = run_with_server(scenario)
    with obs_metrics.use_registry(None):
        predict_off, fleet_off, metrics_off = run_with_server(scenario)
    assert metrics_on == 200
    assert metrics_off == 404
    assert predict_on == predict_off
    assert fleet_on == fleet_off


# -- tier bit-equality at the unit level --------------------------------------


def test_cache_replay_is_bit_equal_to_matrix_columns():
    """Cache fold == each column of one shared matrix evaluation."""
    service = shared_service()
    model_name = first_model()
    model = service.models[model_name]
    # One signature group (same class structure), varied rates -- the
    # shape the batcher hands to evaluate_group.
    queries = []
    for k in range(6):
        document = json.loads(predict_body(
            model_name, n_ifaces=2, scale=0.3 + 0.2 * k))
        request = parse_predict_request(document, octet_quantum=125.0,
                                        packet_quantum=1.0)
        queries.append(request.routers[0])
    assert len({q.signature for q in queries}) == 1
    cache = PredictionCache()
    for query in queries:
        cache.insert(query, model)
    for width in (1, 2, 6):
        batch = queries[:width]
        values = evaluate_group(model, batch)
        for query, value in zip(batch, values):
            assert cache.lookup(query, model) == value


def test_batch_width_never_changes_a_column():
    service = shared_service()
    model_name = first_model()
    model = service.models[model_name]
    request = parse_predict_request(
        json.loads(predict_body(model_name, n_ifaces=2)),
        octet_quantum=125.0, packet_quantum=1.0)
    query = request.routers[0]
    alone = evaluate_group(model, [query])[0]
    others = [parse_predict_request(
        json.loads(predict_body(model_name, n_ifaces=2,
                                scale=1.0 + 0.1 * k)),
        octet_quantum=125.0, packet_quantum=1.0).routers[0]
        for k in range(1, 5)]
    crowded = evaluate_group(model, [query] + others)[0]
    assert alone == crowded


# -- schema parsing -----------------------------------------------------------


def test_interfaces_are_canonically_ordered():
    """Member order in the request body must not affect the signature."""
    document = json.loads(predict_body(first_model(), n_ifaces=3))
    entry = document["routers"][0]
    request_fwd = parse_predict_request(
        document, octet_quantum=125.0, packet_quantum=1.0)
    entry["interfaces"] = list(reversed(entry["interfaces"]))
    request_rev = parse_predict_request(
        document, octet_quantum=125.0, packet_quantum=1.0)
    fwd, rev = request_fwd.routers[0], request_rev.routers[0]
    assert fwd.signature == rev.signature
    assert [m.name for m in fwd.interfaces] == \
        [m.name for m in rev.interfaces]


def test_quantization_is_applied_at_admission():
    document = json.loads(predict_body(first_model(), n_ifaces=1))
    iface = document["routers"][0]["interfaces"][0]
    iface["octet_rate_rx"] = 1000.4
    iface["packet_rate_rx"] = 10.49
    request = parse_predict_request(
        document, octet_quantum=125.0, packet_quantum=1.0)
    member = request.routers[0].interfaces[0]
    assert member.oct_rx == 1000.0
    assert member.pkt_rx == 10.0


@pytest.mark.parametrize("mutate, message", [
    (lambda d: d.__setitem__("routers", "x"), "routers"),
    (lambda d: d["routers"][0].__setitem__("router_model", 7), "router_model"),
    (lambda d: d["routers"][0]["interfaces"][0].__setitem__("trx", 9), "trx"),
    (lambda d: d["routers"][0]["interfaces"][0].__setitem__(
        "octet_rate_rx", -1.0), "octet_rate_rx"),
    (lambda d: d["routers"][0]["interfaces"][0].__setitem__(
        "packet_rate_tx", float("nan")), "packet_rate_tx"),
])
def test_predict_parse_errors(mutate, message):
    document = json.loads(predict_body("m", n_ifaces=1))
    mutate(document)
    with pytest.raises(RequestError, match=message):
        parse_predict_request(document, octet_quantum=125.0,
                              packet_quantum=1.0)


def test_whatif_parse_errors():
    with pytest.raises(RequestError, match="at least one"):
        parse_whatif_request({})
    with pytest.raises(RequestError, match="hostname"):
        parse_whatif_request({"changes": [{"port_index": 0,
                                           "admin_up": False}]})
    with pytest.raises(RequestError, match="sleep_links"):
        parse_whatif_request({"sleep_links": ["a"]})


# -- endpoints ----------------------------------------------------------------


def test_endpoint_statuses():
    async def scenario(server):
        port = server.bound_port
        checks = [
            ("GET", "/healthz", b"", 200),
            ("GET", "/readyz", b"", 200),
            ("GET", "/fleet", b"", 200),
            ("POST", "/healthz", b"", 405),
            ("POST", "/fleet", b"", 405),
            ("GET", "/predict", b"", 405),
            ("GET", "/nope", b"", 404),
            ("POST", "/predict", b"not json", 400),
            ("POST", "/predict", json.dumps(
                {"routers": [{"router_model": "ghost",
                              "interfaces": []}]}).encode(), 400),
            ("POST", "/whatif", json.dumps(
                {"changes": [{"hostname": "ghost", "port_index": 0,
                              "admin_up": False}]}).encode(), 400),
        ]
        for method, path, body, expected in checks:
            status, _headers, payload = await http(port, method, path, body)
            assert status == expected, (method, path, status, payload)

    run_with_server(scenario)


def test_readyz_is_503_until_load_finishes():
    gate = threading.Event()
    service = shared_service()

    def slow_load(*args, **kwargs):
        gate.wait(timeout=30)
        return service

    async def main():
        with mock.patch.object(FleetService, "load", slow_load):
            server = NetpowerServer(ServeConfig(
                preset=PRESET, seed=SEED, port=0, warmup_steps=2))
            await server.start()
            try:
                status, _h, _p = await http(
                    server.bound_port, "GET", "/healthz")
                assert status == 200
                status, _h, payload = await http(
                    server.bound_port, "GET", "/readyz")
                assert status == 503
                assert json.loads(payload)["ready"] is False
                status, _h, _p = await http(
                    server.bound_port, "POST", "/predict",
                    predict_body(first_model()))
                assert status == 503
                gate.set()
                await asyncio.wait_for(server._ready.wait(), timeout=30)
                status, _h, payload = await http(
                    server.bound_port, "GET", "/readyz")
                assert status == 200
                assert json.loads(payload)["ready"] is True
            finally:
                gate.set()
                await server.shutdown()

    asyncio.run(main())


def test_whatif_round_trip_restores_the_fleet():
    change = json.dumps({"changes": [
        {"hostname": "r000001", "port_index": 0,
         "admin_up": False}]}).encode()

    async def scenario(server):
        port = server.bound_port
        _s, _h, first = await http(port, "POST", "/whatif", change)
        document = json.loads(first)
        assert document["changes_applied"] == 1
        assert document["delta_w"] <= 0
        _s, _h, second = await http(port, "POST", "/whatif", change)
        assert second == first

    run_with_server(scenario)


def test_whatif_accounts_for_the_peer_side_of_a_link():
    # Toggling one end of an internal link flips link_up on BOTH
    # ends, so the peer router's power must move too.  Regression:
    # whatif used to re-patch only the named router, leaving the
    # peer's columns stale and its delta missing from variant_w.
    service = shared_service()
    state = service._state
    network = service._network
    target = None
    for hostname in sorted(network.routers):
        for port in network.routers[hostname].ports:
            peer = port.peer
            if port.link_up and peer is not None and \
                    peer.router.hostname != hostname and \
                    peer.router.hostname in state.router_index:
                target = port
                break
        if target is not None:
            break
    assert target is not None, "no live cross-router link in fleet"

    request = parse_whatif_request({"changes": [
        {"hostname": target.router.hostname,
         "port_index": target.index, "admin_up": False}]})
    document = service.whatif(request)

    # Ground truth: apply the same toggle by hand with a full-column
    # rebuild, which cannot miss anyone.
    baseline = float(state.wall_power().sum())
    target.set_admin(False)
    state.refresh()
    expected_variant = float(state.wall_power().sum())
    target.set_admin(True)
    state.refresh()

    assert document["variant_w"] == round(expected_variant, 6)
    assert document["delta_w"] == round(expected_variant - baseline, 6)
    # And the fleet is fully restored, peer included.
    assert float(state.wall_power().sum()) == baseline


def test_interfaceless_router_gets_base_power():
    model_name = first_model()
    body = json.dumps({"routers": [
        {"router_model": model_name, "interfaces": []}]}).encode()

    async def scenario(server):
        status, _h, payload = await http(
            server.bound_port, "POST", "/predict", body)
        assert status == 200
        document = json.loads(payload)
        expected = float(
            shared_service().models[model_name].p_base_w.value)
        assert document["routers"][0]["power_w"] == expected

    run_with_server(scenario)
