"""The vectorized engine must reproduce the object loop's results.

The columnar engine (:mod:`repro.network.engine`) promises stream-exact
RNG consumption and float-association-exact arithmetic, so two fleets
built from identical seeds and run through the two engines must agree on
every observable: total power and traffic, per-router SNMP power traces,
interface counters (exact integer equality), Autopower series, sensor
exports, and the post-run object state.  These tests run the comparison
with and without a mid-run event mix that exercises every invalidation
path (topology changes, power cycles, Autopower deployment, thermal
events).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import (
    AddExternalInterface,
    Commission,
    Decommission,
    DeployAutopower,
    FleetConfig,
    FleetTrafficModel,
    HeatWave,
    NetworkSimulation,
    OsUpdate,
    PowerCycle,
    SetAdminState,
    UnplugModule,
    build_switch_like_network,
    supports_vectorized,
)

CONFIG = FleetConfig(
    model_counts=(("8201-32FH", 2), ("NCS-55A1-24H", 3),
                  ("NCS-55A1-24Q6H-SS", 3), ("ASR-920-24SZ-M", 6),
                  ("N540-24Z8Q2C-M", 4)),
    n_regional_pops=3, core_core_links=2)


def _build():
    network = build_switch_like_network(CONFIG, rng=np.random.default_rng(7))
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(8))
    sim = NetworkSimulation(network, traffic, rng=np.random.default_rng(9))
    return network, sim


def _event_mix():
    """One of everything, aimed at stable hostnames of the test fleet."""
    network, _ = _build()
    hosts = sorted(network.routers)
    h0, h1, h2, h3 = hosts[0], hosts[3], hosts[6], hosts[10]
    return h2, [
        SetAdminState(at_s=1800, hostname=h0, port_index=0, up=False),
        UnplugModule(at_s=3600, hostname=h1, port_index=1),
        DeployAutopower(at_s=5400, hostname=h2),
        OsUpdate(at_s=7200, hostname=h0),
        PowerCycle(at_s=9000, hostname=h1),
        Decommission(at_s=10800, hostname=h3),
        Commission(at_s=14400, hostname=h3),
        AddExternalInterface(at_s=16200, hostname=h3, port_index=6,
                             trx_name="SFP-1G-LX"),
        HeatWave(at_s=18000, ambient_c=29.0),
    ]


def _run_both(duration_s, events=()):
    net1, sim1 = _build()
    r1 = sim1.run(duration_s=duration_s, step_s=300.0, events=list(events),
                  engine="object")
    net2, sim2 = _build()
    r2 = sim2.run(duration_s=duration_s, step_s=300.0, events=list(events),
                  engine="vector")
    return (net1, r1), (net2, r2)


def _assert_results_match(net1, r1, net2, r2):
    np.testing.assert_allclose(r1.total_power.values, r2.total_power.values,
                               rtol=1e-9)
    np.testing.assert_allclose(r1.total_traffic_bps.values,
                               r2.total_traffic_bps.values, rtol=1e-9)
    assert set(r1.snmp) == set(r2.snmp)
    for host in r1.snmp:
        p1, p2 = r1.snmp[host].power.values, r2.snmp[host].power.values
        nan1, nan2 = np.isnan(p1), np.isnan(p2)
        assert (nan1 == nan2).all(), host
        np.testing.assert_allclose(p1[~nan1], p2[~nan1], rtol=1e-9,
                                   err_msg=host)
        assert set(r1.snmp[host].interfaces) == set(r2.snmp[host].interfaces)
        for name, tr1 in r1.snmp[host].interfaces.items():
            tr2 = r2.snmp[host].interfaces[name]
            np.testing.assert_array_equal(
                tr1.rx_octets.counts, tr2.rx_octets.counts,
                err_msg=f"{host}/{name}")
            np.testing.assert_array_equal(
                tr1.tx_packets.counts, tr2.tx_packets.counts,
                err_msg=f"{host}/{name}")
    assert set(r1.autopower) == set(r2.autopower)
    for host in r1.autopower:
        np.testing.assert_allclose(r1.autopower[host].values,
                                   r2.autopower[host].values,
                                   rtol=1e-9, err_msg=host)
    assert len(r1.sensor_exports) == len(r2.sensor_exports) > 0
    for e1, e2 in zip(r1.sensor_exports, r2.sensor_exports):
        np.testing.assert_allclose([e1.input_w, e1.output_w],
                                   [e2.input_w, e2.output_w], rtol=1e-9)
    # The engines must leave the object world in the same state too.
    for host in net1.routers:
        c1 = net1.routers[host].interface_counters()
        c2 = net2.routers[host].interface_counters()
        assert set(c1) == set(c2)
        for name in c1:
            assert c1[name].rx_octets == c2[name].rx_octets, (host, name)
            assert c1[name].tx_octets == c2[name].tx_octets, (host, name)
            assert c1[name].rx_packets == c2[name].rx_packets, (host, name)
            assert c1[name].tx_packets == c2[name].tx_packets, (host, name)


class TestEngineEquivalence:
    def test_fleet_is_vectorizable(self):
        network, _ = _build()
        assert supports_vectorized(network)

    def test_plain_run_matches(self):
        (net1, r1), (net2, r2) = _run_both(duration_s=3600 * 4)
        _assert_results_match(net1, r1, net2, r2)

    def test_event_mix_matches(self):
        autopower_host, events = _event_mix()
        (net1, r1), (net2, r2) = _run_both(duration_s=3600 * 8,
                                           events=events)
        assert set(r1.autopower) == {autopower_host}
        _assert_results_match(net1, r1, net2, r2)


class TestEngineSelection:
    def test_auto_is_default_and_valid(self):
        _, sim = _build()
        result = sim.run(duration_s=1800, step_s=300.0)
        assert len(result.total_power.values) == 6

    def test_invalid_engine_rejected(self):
        _, sim = _build()
        with pytest.raises(ValueError, match="engine"):
            sim.run(duration_s=1800, step_s=300.0, engine="warp")
