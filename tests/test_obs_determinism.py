"""Observability must not perturb seeded results.

The contract (docs/OBSERVABILITY.md): instruments and spans only *read*
values -- they never draw randomness and never feed back into the
simulation -- so every seeded output is byte-identical whether a
registry/tracer is installed or not.
"""

from __future__ import annotations

import numpy as np

from repro.network import (
    FleetConfig,
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.obs import metrics, tracing

SMALL = FleetConfig(
    model_counts=(("8201-32FH", 1), ("NCS-55A1-24H", 2),
                  ("ASR-920-24SZ-M", 2)),
    n_regional_pops=1, core_core_links=1)


def _run(seed: int, engine: str, n_autopower: int = 1):
    network = build_switch_like_network(
        SMALL, rng=np.random.default_rng(seed))
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(seed + 1), n_demands=30)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(seed + 2))
    for hostname in sorted(network.routers)[:n_autopower]:
        sim.deploy_autopower(hostname)
    return sim.run(duration_s=40 * 300.0, step_s=300.0, engine=engine)


class TestSimulationDeterminism:
    def _compare(self, engine: str):
        baseline = _run(seed=11, engine=engine)
        with metrics.use_registry(metrics.MetricsRegistry()):
            with tracing.use_tracer(tracing.Tracer()):
                observed = _run(seed=11, engine=engine)
        np.testing.assert_array_equal(
            baseline.total_power.values, observed.total_power.values)
        np.testing.assert_array_equal(
            baseline.total_traffic_bps.values,
            observed.total_traffic_bps.values)
        assert set(baseline.autopower) == set(observed.autopower)
        for host in baseline.autopower:
            np.testing.assert_array_equal(
                baseline.autopower[host].values,
                observed.autopower[host].values)
        assert len(baseline.sensor_exports) == len(observed.sensor_exports)

    def test_object_engine_identical_with_obs(self):
        self._compare("object")

    def test_vector_engine_identical_with_obs(self):
        self._compare("vector")


class TestDerivationDeterminism:
    def test_model_identical_with_obs(self):
        from repro.core import derive_power_model
        from repro.hardware import VirtualRouter, router_spec
        from repro.lab import ExperimentPlan, Orchestrator

        def derive(seed):
            rng = np.random.default_rng(seed)
            dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                                noise_std_w=0.2)
            plan = ExperimentPlan(
                trx_name="QSFP28-100G-DAC", n_pairs_values=(1, 2),
                rates_gbps=(10, 100), packet_sizes=(256, 1500),
                measure_duration_s=5, settle_time_s=1)
            suite = Orchestrator(dut, rng=rng).run_suite(plan)
            model, _ = derive_power_model([suite])
            return model

        baseline = derive(seed=3)
        with metrics.use_registry(metrics.MetricsRegistry()):
            with tracing.use_tracer(tracing.Tracer()):
                observed = derive(seed=3)
        assert baseline.to_dict() == observed.to_dict()


class TestMetricsReflectTheRun:
    def test_sim_counters_match_run_shape(self):
        registry = metrics.MetricsRegistry()
        with metrics.use_registry(registry):
            result = _run(seed=11, engine="vector")
        steps = registry.get("netpower_sim_steps_total")
        assert steps.labels(engine="vector").value == len(
            result.total_power.values)
        runs = registry.get("netpower_sim_engine_runs_total")
        assert runs.labels(engine="vector").value == 1
        hist = registry.get("netpower_sim_step_seconds")
        assert hist.labels(engine="vector").count == len(
            result.total_power.values)
        power = registry.get("netpower_sim_fleet_power_watts")
        assert power.default().value == result.total_power.values[-1]

    def test_autopower_counters_track_uploads(self):
        registry = metrics.MetricsRegistry()
        with metrics.use_registry(registry):
            result = _run(seed=11, engine="vector", n_autopower=2)
        uploaded = registry.get("netpower_autopower_samples_uploaded_total")
        total = sum(inst.value for _, inst in uploaded.samples())
        assert total == sum(len(s) for s in result.autopower.values())
        deploys = registry.get("netpower_autopower_deploys_total")
        assert deploys.default().value == 2
