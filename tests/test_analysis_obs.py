"""NP-OBS fixtures: span/region names must be string literals."""

import textwrap

import pytest

from repro.analysis import check_source


def check(text: str, path: str = "network/fixture.py"):
    return check_source(textwrap.dedent(text).lstrip("\n"), path)


def ids(result) -> list:
    """Only the NP-OBS findings; other families have their own tests."""
    return [finding.rule_id for finding in result.findings
            if finding.rule_id.startswith("NP-OBS")]


class TestLiteralNamesPass:
    @pytest.mark.parametrize("call", [
        'tracing.span("sim.run", engine="vector")',
        'profile.region("kernel.wall_power")',
        'span("sweep.job", key=key)',
        'region("kernel.refresh")',
        'tracer.span("bench.case", case=name)',
    ])
    def test_literal_first_argument(self, call):
        result = check(f'''
            """Mod."""


            def f(tracing, profile, tracer, span, region, key, name):
                """F."""
                with {call}:
                    pass
            ''')
        assert ids(result) == []

    def test_unrelated_span_calls_ignored(self):
        # re.Match.span() takes no name argument; must not fire.
        result = check('''
            """Mod."""
            import re


            def f(text: str):
                """F."""
                match = re.search("x", text)
                return match.span() if match else None
            ''')
        assert ids(result) == []


class TestDynamicNamesFlagged:
    @pytest.mark.parametrize("call,hint", [
        ('tracing.span(f"cli.{name}")', "f-string"),
        ("profile.region(name)", "variable"),
        ('span("kernel." + suffix)', "computed string"),
        ('region(make_name())', "call result"),
    ])
    def test_dynamic_first_argument(self, call, hint):
        result = check(f'''
            """Mod."""


            def f(tracing, profile, span, region, name, suffix,
                  make_name):
                """F."""
                with {call}:
                    pass
            ''')
        assert ids(result) == ["NP-OBS-001"]
        finding = [f for f in result.findings
                   if f.rule_id == "NP-OBS-001"][0]
        assert hint in finding.message

    def test_fires_outside_det_scope_too(self):
        result = check('''
            """Mod."""


            def f(tracing, name):
                """F."""
                with tracing.span(name):
                    pass
            ''', path="telemetry/fixture.py")
        assert ids(result) == ["NP-OBS-001"]

    def test_suppressible_with_justification(self):
        result = check('''
            """Mod."""


            def f(tracing, command):
                """F."""
                # netpower: ignore[NP-OBS-001] -- closed choice set.
                with tracing.span(f"cli.{command}"):
                    pass
            ''')
        assert ids(result) == []
        assert [f.rule_id for f in result.suppressed
                if f.rule_id.startswith("NP-OBS")] == ["NP-OBS-001"]


class TestForwardingExemption:
    def test_obs_modules_may_forward_names(self):
        source = '''
            """Mod."""


            def span(name: str, tracer):
                """Forwarding helper."""
                return tracer.span(name)
            '''
        flagged = check(source, path="network/fixture.py")
        assert ids(flagged) == ["NP-OBS-001"]
        exempt = check(source, path="obs/tracing.py")
        assert ids(exempt) == []


class TestRepositoryIsClean:
    def test_src_tree_has_no_obs_findings(self):
        from pathlib import Path

        from repro.analysis import check_paths

        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        result = check_paths([src])
        assert not [f for f in result.findings
                    if f.rule_id.startswith("NP-OBS")]
