"""Alert engine: rule matching, FSM dedup, hysteresis, staleness."""

from __future__ import annotations

from repro.monitor import AlertEngine, AlertRule, RuleKind, Severity


def _threshold_rule(**kwargs):
    defaults = dict(name="hot", kind=RuleKind.THRESHOLD, signals="temp/*",
                    severity=Severity.WARNING, above=100.0)
    defaults.update(kwargs)
    return AlertRule(**defaults)


class TestThresholdRule:
    def test_fires_once_while_breached(self):
        engine = AlertEngine([_threshold_rule()])
        for t, v in ((0, 50.0), (1, 150.0), (2, 180.0), (3, 120.0)):
            engine.observe("temp/a", float(t), v)
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.rule == "hot" and alert.signal == "temp/a"
        assert alert.fired_at_s == 1.0 and alert.active

    def test_hysteresis_uses_clear_bound(self):
        engine = AlertEngine([_threshold_rule(clear_above=80.0)])
        engine.observe("temp/a", 0.0, 150.0)   # fires
        engine.observe("temp/a", 1.0, 90.0)    # below 100 but above 80
        assert engine.alerts[0].active
        engine.observe("temp/a", 2.0, 70.0)    # below the clear bound
        assert not engine.alerts[0].active
        assert engine.alerts[0].resolved_at_s == 2.0
        engine.observe("temp/a", 3.0, 150.0)   # breaches again
        assert len(engine.alerts) == 2

    def test_below_bound(self):
        rule = _threshold_rule(above=None, below=0.5, clear_below=0.6)
        engine = AlertEngine([rule])
        engine.observe("temp/a", 0.0, 0.4)
        assert len(engine.alerts) == 1
        engine.observe("temp/a", 1.0, 0.55)    # within hysteresis band
        assert engine.alerts[0].active
        engine.observe("temp/a", 2.0, 0.7)
        assert not engine.alerts[0].active

    def test_signals_are_independent(self):
        engine = AlertEngine([_threshold_rule()])
        engine.observe("temp/a", 0.0, 150.0)
        engine.observe("temp/b", 0.0, 150.0)
        engine.observe("other/c", 0.0, 150.0)  # pattern does not match
        assert sorted(a.signal for a in engine.alerts) == \
            ["temp/a", "temp/b"]

    def test_debounce_for_s(self):
        engine = AlertEngine([_threshold_rule(for_s=10.0)])
        engine.observe("temp/a", 0.0, 150.0)   # pending
        engine.observe("temp/a", 5.0, 150.0)   # still pending
        assert engine.alerts == []
        engine.observe("temp/a", 12.0, 150.0)  # held long enough
        assert len(engine.alerts) == 1
        # A dip resets the debounce clock.
        engine2 = AlertEngine([_threshold_rule(for_s=10.0)])
        engine2.observe("temp/a", 0.0, 150.0)
        engine2.observe("temp/a", 5.0, 50.0)
        engine2.observe("temp/a", 8.0, 150.0)
        engine2.observe("temp/a", 12.0, 150.0)
        assert engine2.alerts == []


class TestRateOfChangeRule:
    def test_fires_on_fast_rise(self):
        rule = AlertRule(name="step", kind=RuleKind.RATE_OF_CHANGE,
                         signals="power", rate_above=1.0, rate_below=-1.0)
        engine = AlertEngine([rule])
        engine.observe("power", 0.0, 100.0)
        engine.observe("power", 10.0, 105.0)    # 0.5 W/s: fine
        assert engine.alerts == []
        engine.observe("power", 20.0, 220.0)    # 11.5 W/s: breach
        assert len(engine.alerts) == 1
        engine.observe("power", 30.0, 225.0)    # settles, resolves
        assert not engine.alerts[0].active

    def test_fires_on_fast_drop(self):
        rule = AlertRule(name="step", kind=RuleKind.RATE_OF_CHANGE,
                         signals="power", rate_below=-1.0)
        engine = AlertEngine([rule])
        engine.observe("power", 0.0, 100.0)
        engine.observe("power", 10.0, 50.0)
        assert len(engine.alerts) == 1


class TestZScoreRule:
    def _rule(self, **kwargs):
        defaults = dict(name="z", kind=RuleKind.ZSCORE, signals="resid",
                        z_threshold=4.0, z_clear=2.0, min_samples=5)
        defaults.update(kwargs)
        return AlertRule(**defaults)

    def test_warmup_then_fire_then_clear(self):
        engine = AlertEngine([self._rule()])
        for t in range(20):
            value = 10.0 + (0.1 if t % 2 else -0.1)
            engine.observe("resid", float(t), value)
        assert engine.alerts == []
        engine.observe("resid", 20.0, 50.0)     # way outside the band
        assert len(engine.alerts) == 1
        assert engine.alerts[0].active
        engine.observe("resid", 21.0, 10.0)     # back inside
        assert not engine.alerts[0].active

    def test_baseline_frozen_while_firing(self):
        """A stuck anomaly must not teach the track it is normal."""
        engine = AlertEngine([self._rule()])
        for t in range(20):
            engine.observe("resid", float(t), 10.0 + (t % 2) * 0.2)
        engine.observe("resid", 20.0, 50.0)
        assert len(engine.alerts) == 1
        for t in range(21, 60):                 # anomaly persists
            engine.observe("resid", float(t), 50.0)
        assert engine.alerts[0].active          # never adapted
        assert len(engine.alerts) == 1          # and never re-fired


class TestStalenessRule:
    def _engine(self):
        rule = AlertRule(name="stale", kind=RuleKind.STALENESS,
                         signals="ap/*", stale_after_s=100.0)
        return AlertEngine([rule])

    def test_fires_when_signal_goes_quiet(self):
        engine = self._engine()
        engine.observe("ap/a", 0.0, 1.0)
        engine.evaluate(50.0)
        assert engine.alerts == []
        engine.evaluate(150.0)
        assert len(engine.alerts) == 1
        assert engine.alerts[0].rule == "stale"
        # A fresh sample resolves it on the next tick.
        engine.observe("ap/a", 160.0, 1.0)
        engine.evaluate(170.0)
        assert not engine.alerts[0].active

    def test_registered_but_never_seen_signal_counts(self):
        engine = self._engine()
        engine.register_signal("ap/quiet", 0.0)
        engine.evaluate(500.0)
        assert [a.signal for a in engine.alerts] == ["ap/quiet"]


class TestSeverityAndViews:
    def test_active_view_and_severity(self):
        hot = _threshold_rule(severity=Severity.CRITICAL)
        engine = AlertEngine([hot])
        engine.observe("temp/a", 0.0, 150.0)
        engine.observe("temp/b", 1.0, 150.0)
        engine.observe("temp/a", 2.0, 10.0)
        active = engine.active()
        assert [a.signal for a in active] == ["temp/b"]
        assert active[0].severity is Severity.CRITICAL
