"""The ``netpower`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.model import PowerModel


class TestDerive:
    def test_derive_to_stdout(self, capsys):
        code = main(["derive", "NCS-55A1-24H", "QSFP28-100G-DAC",
                     "--quick", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        model = PowerModel.from_dict(json.loads(out))
        assert model.router_model == "NCS-55A1-24H"
        assert model.p_base_w.value == pytest.approx(320.0, rel=0.08)

    def test_derive_to_file(self, tmp_path, capsys):
        target = tmp_path / "model.json"
        code = main(["derive", "Wedge 100BF-32X", "QSFP28-100G-DAC",
                     "--quick", "-o", str(target)])
        assert code == 0
        model = PowerModel.from_dict(json.loads(target.read_text()))
        assert model.p_base_w.value == pytest.approx(108.0, rel=0.1)

    def test_unknown_device_fails_cleanly(self, capsys):
        assert main(["derive", "CRS-1", "QSFP28-100G-DAC"]) == 2
        assert "known models" in capsys.readouterr().err

    def test_unknown_transceiver_fails_cleanly(self, capsys):
        assert main(["derive", "NCS-55A1-24H", "NO-SUCH-MODULE",
                     "--quick"]) == 2
        assert "known products" in capsys.readouterr().err

    def test_multiple_transceivers(self, capsys):
        code = main(["derive", "Nexus9336-FX2", "QSFP28-100G-DAC",
                     "QSFP28-100G-LR", "--quick"])
        assert code == 0
        model = PowerModel.from_dict(json.loads(capsys.readouterr().out))
        assert len(model.interfaces) == 2


class TestAudit:
    def test_audit_runs(self, capsys):
        code = main(["audit", "--days", "0.25", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "routers            : 107" in out
        assert "single PSU" in out


class TestSleepStudy:
    def test_sleep_study_runs(self, capsys):
        code = main(["sleep-study", "--days", "1", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ever asleep" in out
        assert "% of" in out


class TestDatasheets:
    def test_datasheets_pipeline(self, capsys):
        code = main(["datasheets", "--models", "120", "--seed", "11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "extraction accuracy" in out
        assert "8201-32FH" in out  # Table 1 rows printed


class TestValidate:
    def test_validate_prints_summary(self, capsys):
        code = main(["validate", "--days", "1", "--seed", "31"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PSU telemetry" in out
        assert "census" in out
        assert "8201-32FH" in out


class TestRateStudy:
    def test_rate_study_runs(self, capsys):
        code = main(["rate-study", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "links clocked down" in out
        assert "estimated savings" in out


class TestZoo:
    def test_zoo_export(self, tmp_path, capsys):
        target = tmp_path / "zoo.json"
        code = main(["zoo", "-o", str(target), "--seed", "2"])
        assert code == 0
        from repro.zoo import NetworkPowerZoo
        zoo = NetworkPowerZoo.from_json(target.read_text())
        assert zoo.summary()["power-model"] == 8
        assert "NCS-55A1-24H" in zoo.models()
