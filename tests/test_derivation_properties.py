"""Property-based validation of the §5.2 regression chain.

Hand-built measurement suites with *known arbitrary* parameters and no
noise must round-trip exactly through ``derive_class`` -- for any
parameter combination hypothesis can dream up, not just the catalog's.
This pins the algebra (idle-slope subtraction, the factor of two, the
Eq. 17 two-stage regression) independently of the virtual lab.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.core import derive_class
from repro.hardware.transceiver import PortType
from repro.lab import ExperimentSuite, MeasurementFrame
from repro.lab.power_meter import PowerSummary
from repro.lab.traffic_gen import Flow

N_VALUES = (1, 2, 4, 8)
SNAKE_N = 4
RATES_GBPS = (5.0, 25.0, 50.0, 100.0)
SIZES = (64.0, 256.0, 1500.0)


def exact_suite(p_base, p_trx_in, p_port, p_trx_up, e_bit_pj, e_pkt_nj,
                p_offset):
    """Frames computed straight from the model equations, zero noise."""
    def frame(experiment, n_pairs, watts, flow=None):
        summary = PowerSummary(mean_w=watts, std_w=0.0, median_w=watts,
                               n_samples=10, duration_s=10)
        return MeasurementFrame(
            experiment=experiment, n_pairs=n_pairs,
            trx_name=None if experiment == "base" else "QSFP28-100G-DAC",
            speed_gbps=None if experiment == "base" else 100.0,
            summary=summary, flow=flow)

    suite = ExperimentSuite(dut_model="SYNTH", port_type=PortType.QSFP28,
                            trx_name="QSFP28-100G-DAC", speed_gbps=100.0)
    suite.frames.append(frame("base", 0, p_base))
    for n in N_VALUES:
        suite.frames.append(frame("idle", n, p_base + 2 * n * p_trx_in))
        suite.frames.append(frame(
            "port", n, p_base + 2 * n * p_trx_in + n * p_port))
        suite.frames.append(frame(
            "trx", n,
            p_base + 2 * n * p_trx_in + 2 * n * (p_port + p_trx_up)))
    static_at_snake = (p_base + 2 * SNAKE_N * p_trx_in
                       + 2 * SNAKE_N * (p_port + p_trx_up))
    e_bit = units.pj_to_joules(e_bit_pj)
    e_pkt = units.nj_to_joules(e_pkt_nj)
    for size in SIZES:
        for rate_gbps in RATES_GBPS:
            r = units.gbps_to_bps(rate_gbps)
            p = units.packet_rate(r, size)
            dynamic = 2 * SNAKE_N * (e_bit * r + e_pkt * p + p_offset)
            suite.frames.append(frame(
                "snake", SNAKE_N, static_at_snake + dynamic,
                flow=Flow(bit_rate_bps=r, packet_bytes=size,
                          tool="ib_send_bw")))
    return suite


class TestExactRecovery:
    @given(
        p_base=st.floats(min_value=5, max_value=2000),
        p_trx_in=st.floats(min_value=0, max_value=20),
        p_port=st.floats(min_value=-0.5, max_value=25),
        p_trx_up=st.floats(min_value=-2, max_value=5),
        e_bit_pj=st.floats(min_value=0.5, max_value=60),
        e_pkt_nj=st.floats(min_value=-60, max_value=250),
        p_offset=st.floats(min_value=-1, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_parameters(self, p_base, p_trx_in, p_port,
                                       p_trx_up, e_bit_pj, e_pkt_nj,
                                       p_offset):
        suite = exact_suite(p_base, p_trx_in, p_port, p_trx_up,
                            e_bit_pj, e_pkt_nj, p_offset)
        model, report = derive_class(suite)
        scale = max(1.0, abs(p_base))
        assert model.p_trx_in_w.value == pytest.approx(p_trx_in,
                                                       abs=1e-6 * scale)
        assert model.p_port_w.value == pytest.approx(p_port,
                                                     abs=1e-6 * scale)
        assert model.p_trx_up_w.value == pytest.approx(p_trx_up,
                                                       abs=1e-6 * scale)
        assert model.e_bit_pj.value == pytest.approx(e_bit_pj, rel=1e-5,
                                                     abs=1e-4)
        assert model.e_pkt_nj.value == pytest.approx(e_pkt_nj, rel=1e-5,
                                                     abs=1e-3)
        assert model.p_offset_w.value == pytest.approx(p_offset,
                                                       abs=1e-6 * scale)
        # All the linearity diagnostics must confirm a perfect fit.  The
        # idle fit's r-squared is only meaningful when the per-module
        # signal rises above float rounding of p_base (a near-zero
        # p_trx_in leaves the idle series constant to within ulps, where
        # r-squared measures rounding noise; the slope recovery above
        # already covers that regime).
        if p_trx_in > 1e-9 * scale:
            assert report.idle_fit.r_squared == pytest.approx(1.0)
        assert report.energy_fit.r_squared == pytest.approx(1.0)

    def test_prediction_consistency_after_round_trip(self):
        """The recovered model must predict the suite's own frames."""
        suite = exact_suite(300.0, 2.5, 0.7, 0.3, 9.0, 21.0, 0.15)
        model, _ = derive_class(suite)
        from repro.core.model import InterfaceState
        # Rebuild the Trx(4) configuration as interface states.
        states = [InterfaceState(key=model.key) for _ in range(2 * 4)]
        static = sum(model.interface_power_w(
            plugged=True, admin_up=True, link_up=True)
            for _ in range(2 * 4))
        trx_frame = [f for f in suite.of("trx") if f.n_pairs == 4][0]
        assert 300.0 + static == pytest.approx(trx_frame.summary.mean_w,
                                               abs=1e-6)
