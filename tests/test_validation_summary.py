"""Fleet-level validation summaries."""

import numpy as np
import pytest

from repro.telemetry.traces import TimeSeries
from repro.validation import (
    ComparisonStats,
    TelemetryVerdict,
    ValidationReport,
    ValidationSummary,
)


def stats(offset=0.0, residual=0.1, corr=0.95, ref_std=2.0, level=300.0,
          n=100, cand_std=2.0):
    return ComparisonStats(offset_w=offset, residual_std_w=residual,
                           correlation=corr, reference_std_w=ref_std,
                           reference_level_w=level, n_samples=n,
                           candidate_std_w=cand_std)


def report(hostname, model, psu_stats, model_stats):
    empty = TimeSeries(np.array([]), np.array([]))
    return ValidationReport(hostname=hostname, router_model=model,
                            psu_stats=psu_stats, model_stats=model_stats,
                            autopower=empty, psu_series=None,
                            model_series=empty)


@pytest.fixture
def reports():
    return {
        "sw001": report("sw001", "8201-32FH",
                        stats(offset=17.5), stats(offset=2.3)),
        "sw003": report("sw003", "NCS-55A1-24H",
                        stats(offset=-6.0, corr=0.02, residual=3.0,
                              cand_std=0.05),
                        stats(offset=-11.0)),
        "sw010": report("sw010", "N540X-8Z16G-SYS-A",
                        None, stats(offset=2.9)),
    }


class TestSummary:
    def test_rows_sorted_and_complete(self, reports):
        summary = ValidationSummary.from_reports(reports)
        assert [r.hostname for r in summary.rows] \
            == ["sw001", "sw003", "sw010"]

    def test_census(self, reports):
        summary = ValidationSummary.from_reports(reports)
        census = summary.psu_verdict_census()
        assert census[TelemetryVerdict.PRECISE_NOT_ACCURATE] == 1
        assert census[TelemetryVerdict.UNINFORMATIVE] == 1
        assert census[TelemetryVerdict.ABSENT] == 1

    def test_headline_claims(self, reports):
        summary = ValidationSummary.from_reports(reports)
        # Q3: every model is precise (possibly offset).
        assert summary.models_all_precise()
        # Q2: PSU telemetry is NOT universally trustworthy.
        assert not summary.psu_universally_trustworthy()

    def test_median_offset(self, reports):
        summary = ValidationSummary.from_reports(reports)
        assert summary.median_model_offset_w() == pytest.approx(2.9)

    def test_absent_psu_offset_is_nan(self, reports):
        summary = ValidationSummary.from_reports(reports)
        n540x = next(r for r in summary.rows if r.hostname == "sw010")
        assert np.isnan(n540x.psu_offset_w)

    def test_to_text(self, reports):
        text = ValidationSummary.from_reports(reports).to_text()
        assert "sw001" in text
        assert "precise but offset" in text
        assert "census" in text
        assert "median |offset|" in text

    def test_empty(self):
        summary = ValidationSummary.from_reports({})
        assert summary.models_all_precise()  # vacuous truth
        assert np.isnan(summary.median_model_offset_w())
        assert summary.psu_verdict_census() == {}
