"""Transceiver catalog and the "down does not mean off" behaviour."""

import pytest

from repro.hardware.transceiver import (
    PortType,
    Reach,
    TRANSCEIVER_CATALOG,
    catalog_by_form_factor,
    compatible,
    transceiver,
)


class TestCatalog:
    def test_table2_modules_present(self):
        # The module/power combinations of Tables 2 and 6 exist.
        dac = TRANSCEIVER_CATALOG["QSFP28-100G-DAC"]
        assert dac.power_in_w == pytest.approx(0.02)
        assert dac.power_up_w == pytest.approx(0.19)
        lr = TRANSCEIVER_CATALOG["QSFP28-100G-LR"]
        assert lr.power_in_w == pytest.approx(2.79)

    def test_400g_fr4_matches_fig4_discussion(self):
        # §6.2: removing a 400G FR4 dropped ~13 W; 12 W is the module.
        fr4 = TRANSCEIVER_CATALOG["QSFP-DD-400G-FR4"]
        assert fr4.datasheet_power_w == pytest.approx(12.0)
        assert fr4.total_power_w == pytest.approx(12.0, rel=0.2)

    def test_plug_in_cost_dominates_for_optics(self):
        # §7: P_trx,in dominates total transceiver power for optics.
        for name in ("QSFP28-100G-LR4", "QSFP-DD-400G-FR4", "SFP+-10G-LR"):
            module = TRANSCEIVER_CATALOG[name]
            assert module.power_in_w > abs(module.power_up_w)

    def test_passive_dacs_draw_little(self):
        for module in TRANSCEIVER_CATALOG.values():
            if module.reach == Reach.DAC:
                assert module.total_power_w < 1.0

    def test_unique_names(self):
        names = [m.name for m in TRANSCEIVER_CATALOG.values()]
        assert len(names) == len(set(names))


class TestPowerDraw:
    def test_unplugged_draws_nothing(self):
        module = TRANSCEIVER_CATALOG["QSFP28-100G-LR4"]
        assert module.power_draw(plugged=False, link_up=False) == 0.0

    def test_down_does_not_mean_off(self):
        # The paper's central §7 observation.
        module = TRANSCEIVER_CATALOG["QSFP28-100G-LR4"]
        plugged_down = module.power_draw(plugged=True, link_up=False,
                                         port_admin_up=False)
        assert plugged_down == pytest.approx(module.power_in_w)
        assert plugged_down > 0.5 * module.total_power_w

    def test_software_fix_would_power_off(self):
        # The paper postulates powering modules off on admin-down is a
        # software fix; the flag models that fixed world.
        from dataclasses import replace
        module = replace(TRANSCEIVER_CATALOG["QSFP28-100G-LR4"],
                         powers_off_when_down=True)
        assert module.power_draw(plugged=True, link_up=False,
                                 port_admin_up=False) == 0.0
        assert module.power_draw(plugged=True, link_up=True,
                                 port_admin_up=True) > 0

    def test_link_up_adds_up_share(self):
        module = TRANSCEIVER_CATALOG["QSFP28-100G-DAC"]
        down = module.power_draw(plugged=True, link_up=False)
        up = module.power_draw(plugged=True, link_up=True)
        assert up - down == pytest.approx(module.power_up_w)


class TestCompatibility:
    def test_exact_match(self):
        lr4 = TRANSCEIVER_CATALOG["QSFP28-100G-LR4"]
        assert compatible(PortType.QSFP28, lr4)

    def test_qsfp_in_qsfp28(self):
        qsfp = TRANSCEIVER_CATALOG["QSFP-100G-DAC"]
        assert compatible(PortType.QSFP28, qsfp)
        assert compatible(PortType.QSFP_DD, qsfp)

    def test_sfp_in_sfp_plus(self):
        sfp = TRANSCEIVER_CATALOG["SFP-1G-LX"]
        assert compatible(PortType.SFP_PLUS, sfp)
        assert compatible(PortType.SFP28, sfp)

    def test_no_downward_compat(self):
        qsfp_dd = TRANSCEIVER_CATALOG["QSFP-DD-400G-FR4"]
        assert not compatible(PortType.QSFP28, qsfp_dd)
        sfp_plus = TRANSCEIVER_CATALOG["SFP+-10G-LR"]
        assert not compatible(PortType.SFP, sfp_plus)

    def test_plug_rejects_misfit(self, quiet_router):
        with pytest.raises(ValueError):
            quiet_router.port(0).plug("SFP-1G-LX")  # SFP into QSFP28


class TestInstances:
    def test_unique_serials(self):
        a = transceiver("QSFP28-100G-DAC")
        b = transceiver("QSFP28-100G-DAC")
        assert a.serial != b.serial
        assert a.name == b.name

    def test_unknown_product(self):
        with pytest.raises(KeyError, match="known products"):
            transceiver("QSFP28-100G-NOPE")

    def test_catalog_by_form_factor_partitions(self):
        grouped = catalog_by_form_factor()
        total = sum(len(models) for models in grouped.values())
        assert total == len(TRANSCEIVER_CATALOG)
        for form, models in grouped.items():
            assert all(m.form_factor == form for m in models)
