"""Autopower: store-and-forward external measurement units."""

import numpy as np
import pytest

from repro.hardware import VirtualRouter, router_spec
from repro.lab.power_meter import PowerSample
from repro.telemetry.autopower import (
    AutopowerClient,
    AutopowerServer,
    OutageWindow,
    Transport,
    deploy_unit,
)


class SpyServer(AutopowerServer):
    """Counts every client-visible RPC, for client-initiated-design tests."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def register(self, unit_id):
        self.calls.append("register")
        super().register(unit_id)

    def receive_chunk(self, unit_id, samples):
        self.calls.append("receive_chunk")
        return super().receive_chunk(unit_id, samples)

    def should_measure(self, unit_id):
        self.calls.append("should_measure")
        return super().should_measure(unit_id)


@pytest.fixture
def router(rng):
    return VirtualRouter(router_spec("8201-32FH"), hostname="pop-8201",
                         rng=rng, noise_std_w=0.1)


@pytest.fixture
def server():
    return AutopowerServer()


def run_unit(client, router, start_s, end_s, step_s=0.5):
    t = start_s
    while t < end_s:
        router.advance(step_s)
        client.tick(t)
        t += step_s
    client.try_upload(end_s)


class TestHappyPath:
    def test_samples_reach_server(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=10)
        run_unit(client, router, 0, 60)
        series = server.download("unit-1")
        assert len(series) == 120
        assert series.mean() == pytest.approx(router.wall_power_w(),
                                              rel=0.05)

    def test_measures_true_wall_power_not_psu_report(self, router, server,
                                                     rng):
        # The 8201 lies by a constant offset over SNMP; Autopower doesn't.
        client = AutopowerClient("unit-1", router, server, rng=rng)
        run_unit(client, router, 0, 30)
        external = server.download("unit-1").mean()
        reported = router.psu_reported_power_w()
        assert reported - external > 10  # the quirk offset stays visible


class TestResilience:
    def test_network_outage_loses_nothing(self, router, server, rng):
        transport = Transport([OutageWindow(10, 50)])
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 transport=transport, upload_period_s=5)
        run_unit(client, router, 0, 60)
        # Every sample eventually arrives despite the 40 s uplink outage.
        assert len(server.download("unit-1")) == 120
        assert not client.local_buffer

    def test_buffer_grows_while_offline(self, router, server, rng):
        transport = Transport([OutageWindow(0, 1000)])
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=5, transport=transport)
        run_unit(client, router, 0, 30)
        assert len(client.local_buffer) == 60
        assert len(server.download("unit-1")) == 0

    def test_power_outage_loses_only_the_window(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=5)
        client.add_power_outage(20, 40)
        run_unit(client, router, 0, 60)
        series = server.download("unit-1")
        assert len(series) == 80  # 120 ticks minus 40 lost
        in_window = series.slice(20, 40)
        assert len(in_window) == 0
        assert client.boots >= 2  # restarted after the outage

    def test_chunked_upload(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng)
        client.CHUNK_SIZE = 16
        transport = Transport([OutageWindow(0, 99)])
        client.transport = transport
        run_unit(client, router, 0, 50, step_s=0.5)
        uploaded = client.try_upload(100.0)
        assert uploaded == 100
        assert not client.local_buffer


class TestResilienceContract:
    """The §6.1 guarantees: client-initiated, store-and-forward, boot-safe."""

    def test_server_never_contacted_during_uplink_outage(self, router, rng):
        # The uplink is down for the entire run: a client-initiated
        # design must not issue a single RPC -- not even the toggle poll.
        server = SpyServer()
        transport = Transport([OutageWindow(0, 1000)])
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 transport=transport, upload_period_s=5)
        run_unit(client, router, 0, 60, step_s=0.5)
        assert server.calls == []
        assert len(client.local_buffer) == 120  # still measuring locally

    def test_backlog_flushes_on_first_due_tick_after_outage(self, router,
                                                            server, rng):
        # Outage covers (12, 43).  The last successful upload was at
        # t=10, so once the uplink returns every tick is overdue: the
        # first post-outage tick (t=43) must drain the backlog, not
        # wait out another upload period from a mid-outage attempt.
        transport = Transport([OutageWindow(12, 43)])
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 transport=transport, upload_period_s=5)
        t = 0.0
        while t < 43.5:
            router.advance(0.5)
            client.tick(t)
            t += 0.5
        # 87 ticks so far (t=0..43.0); all uploaded by the t=43 flush.
        assert not client.local_buffer
        assert len(server.download("unit-1")) == 87

    def test_offline_attempt_does_not_advance_upload_clock(self, router,
                                                           server, rng):
        transport = Transport([OutageWindow(5, 100)])
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 transport=transport, upload_period_s=60)
        client.tick(0.0)
        client.try_upload(0.0)
        stamp = client._last_upload_s
        assert client.try_upload(50.0) == 0  # offline: no samples move
        assert client._last_upload_s == stamp

    def test_boot_counter_once_per_power_outage(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=5)
        client.add_power_outage(10, 20)
        client.add_power_outage(40, 45)
        run_unit(client, router, 0, 60, step_s=0.5)
        assert client.boots == 3  # initial power-on + one per outage

    def test_toggle_state_cached_through_uplink_outage(self, router, rng):
        # stop_measurement lands while the uplink is down: the unit
        # cannot hear it, so it keeps measuring (last known state) and
        # obeys only once the uplink returns.
        server = AutopowerServer()
        transport = Transport([OutageWindow(10, 30)])
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 transport=transport, upload_period_s=5)
        run_unit(client, router, 0, 10)
        server.stop_measurement("unit-1")
        t = 10.0
        while t < 30:                      # offline: still measuring
            router.advance(0.5)
            client.tick(t)
            t += 0.5
        assert sum(1 for s in client.local_buffer
                   if 10 <= s.timestamp_s < 30) == 40
        run_unit(client, router, 30, 40)   # back online: obeys the stop
        series = server.download("unit-1")
        assert len(series.slice(10, 30)) == 40
        assert len(series.slice(30, 40)) == 0

    def test_download_orders_and_dedups_interleaved_chunks(self, server):
        # Chunks arriving out of order with overlapping timestamps (a
        # re-sent chunk after a flaky upload) must come back strictly
        # increasing with duplicates dropped.
        def chunk(stamps):
            return [PowerSample(timestamp_s=t, power_w=100.0 + t)
                    for t in stamps]

        server.receive_chunk("unit-1", chunk([3.0, 4.0, 5.0]))
        server.receive_chunk("unit-1", chunk([0.0, 1.0, 2.0]))
        server.receive_chunk("unit-1", chunk([2.0, 3.0, 6.0]))  # re-sent
        series = server.download("unit-1")
        assert list(series.timestamps) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0,
                                           6.0]
        assert np.all(np.diff(series.timestamps) > 0)
        assert list(series.values) == [100.0, 101.0, 102.0, 103.0, 104.0,
                                       105.0, 106.0]


class TestServerControl:
    def test_stop_and_start(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=5)
        run_unit(client, router, 0, 10)
        server.stop_measurement("unit-1")
        run_unit(client, router, 10, 20)
        server.start_measurement("unit-1")
        run_unit(client, router, 20, 30)
        series = server.download("unit-1")
        assert len(series.slice(10, 20)) == 0
        assert len(series.slice(20, 30)) == 20

    def test_units_listing(self, router, server, rng):
        AutopowerClient("unit-z", router, server, rng=rng).try_upload(0)
        AutopowerClient("unit-a", router, server, rng=rng).try_upload(0)
        assert server.units() == ["unit-a", "unit-z"]

    def test_download_unknown_unit_empty(self, server):
        assert len(server.download("ghost")) == 0


class TestDeployment:
    def test_deploy_power_cycles_the_router(self, router, server, rng):
        boots_before = router._boots
        client = deploy_unit(router, server, rng=rng)
        assert router._boots == boots_before + 1
        assert client.unit_id == "autopower-pop-8201"

    def test_deploy_forwards_custom_transport(self, router, server, rng):
        transport = Transport([OutageWindow(0, 30)])
        client = deploy_unit(router, server, rng=rng, transport=transport)
        assert client.transport is transport
        assert not client.transport.available(15.0)

    def test_sim_deploy_forwards_custom_transport(self, rng):
        from repro.network import (FleetConfig, FleetTrafficModel,
                                   NetworkSimulation,
                                   build_switch_like_network)

        network = build_switch_like_network(
            FleetConfig(model_counts=(("NCS-55A1-24H", 2),),
                        n_regional_pops=1, core_core_links=1),
            rng=rng)
        sim = NetworkSimulation(
            network, FleetTrafficModel(network, rng=rng),
            rng=np.random.default_rng(5))
        hostname = sorted(network.routers)[0]
        transport = Transport([OutageWindow(0, 30)])
        client = sim.deploy_autopower(hostname, transport=transport)
        assert client.transport is transport

    def test_outage_window_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(10, 10)
