"""Autopower: store-and-forward external measurement units."""

import numpy as np
import pytest

from repro.hardware import VirtualRouter, router_spec
from repro.telemetry.autopower import (
    AutopowerClient,
    AutopowerServer,
    OutageWindow,
    Transport,
    deploy_unit,
)


@pytest.fixture
def router(rng):
    return VirtualRouter(router_spec("8201-32FH"), hostname="pop-8201",
                         rng=rng, noise_std_w=0.1)


@pytest.fixture
def server():
    return AutopowerServer()


def run_unit(client, router, start_s, end_s, step_s=0.5):
    t = start_s
    while t < end_s:
        router.advance(step_s)
        client.tick(t)
        t += step_s
    client.try_upload(end_s)


class TestHappyPath:
    def test_samples_reach_server(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=10)
        run_unit(client, router, 0, 60)
        series = server.download("unit-1")
        assert len(series) == 120
        assert series.mean() == pytest.approx(router.wall_power_w(),
                                              rel=0.05)

    def test_measures_true_wall_power_not_psu_report(self, router, server,
                                                     rng):
        # The 8201 lies by a constant offset over SNMP; Autopower doesn't.
        client = AutopowerClient("unit-1", router, server, rng=rng)
        run_unit(client, router, 0, 30)
        external = server.download("unit-1").mean()
        reported = router.psu_reported_power_w()
        assert reported - external > 10  # the quirk offset stays visible


class TestResilience:
    def test_network_outage_loses_nothing(self, router, server, rng):
        transport = Transport([OutageWindow(10, 50)])
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 transport=transport, upload_period_s=5)
        run_unit(client, router, 0, 60)
        # Every sample eventually arrives despite the 40 s uplink outage.
        assert len(server.download("unit-1")) == 120
        assert not client.local_buffer

    def test_buffer_grows_while_offline(self, router, server, rng):
        transport = Transport([OutageWindow(0, 1000)])
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=5, transport=transport)
        run_unit(client, router, 0, 30)
        assert len(client.local_buffer) == 60
        assert len(server.download("unit-1")) == 0

    def test_power_outage_loses_only_the_window(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=5)
        client.add_power_outage(20, 40)
        run_unit(client, router, 0, 60)
        series = server.download("unit-1")
        assert len(series) == 80  # 120 ticks minus 40 lost
        in_window = series.slice(20, 40)
        assert len(in_window) == 0
        assert client.boots >= 2  # restarted after the outage

    def test_chunked_upload(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng)
        client.CHUNK_SIZE = 16
        transport = Transport([OutageWindow(0, 99)])
        client.transport = transport
        run_unit(client, router, 0, 50, step_s=0.5)
        uploaded = client.try_upload(100.0)
        assert uploaded == 100
        assert not client.local_buffer


class TestServerControl:
    def test_stop_and_start(self, router, server, rng):
        client = AutopowerClient("unit-1", router, server, rng=rng,
                                 upload_period_s=5)
        run_unit(client, router, 0, 10)
        server.stop_measurement("unit-1")
        run_unit(client, router, 10, 20)
        server.start_measurement("unit-1")
        run_unit(client, router, 20, 30)
        series = server.download("unit-1")
        assert len(series.slice(10, 20)) == 0
        assert len(series.slice(20, 30)) == 20

    def test_units_listing(self, router, server, rng):
        AutopowerClient("unit-z", router, server, rng=rng).try_upload(0)
        AutopowerClient("unit-a", router, server, rng=rng).try_upload(0)
        assert server.units() == ["unit-a", "unit-z"]

    def test_download_unknown_unit_empty(self, server):
        assert len(server.download("ghost")) == 0


class TestDeployment:
    def test_deploy_power_cycles_the_router(self, router, server, rng):
        boots_before = router._boots
        client = deploy_unit(router, server, rng=rng)
        assert router._boots == boots_before + 1
        assert client.unit_id == "autopower-pop-8201"

    def test_outage_window_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(10, 10)
