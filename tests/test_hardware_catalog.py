"""The ground-truth router catalog (Tables 1, 2, 6 encodings)."""

import pytest

from repro.hardware.catalog import (
    MODELLED_DEVICES,
    ROUTER_CATALOG,
    TABLE1_DEVICES,
    TABLE1_MEASURED_MEDIAN_W,
    default_class_truth,
    router_spec,
)
from repro.hardware.transceiver import PortType, Reach


class TestTable2Encoding:
    """Spot-check the paper's Table 2 values are encoded verbatim."""

    def test_ncs_55a1_24h(self):
        spec = router_spec("NCS-55A1-24H")
        assert spec.p_base_w == 320.0
        truth = spec.class_map[(PortType.QSFP28, Reach.DAC, 100)]
        assert truth.p_port_w == pytest.approx(0.32)
        assert truth.p_trx_in_w == pytest.approx(0.02)
        assert truth.p_trx_up_w == pytest.approx(0.19)
        assert truth.e_bit_pj == pytest.approx(22)
        assert truth.e_pkt_nj == pytest.approx(58)
        assert truth.p_offset_w == pytest.approx(0.37)

    def test_nexus_9336_lr_vs_dac(self):
        spec = router_spec("Nexus9336-FX2")
        lr = spec.class_map[(PortType.QSFP28, Reach.LR, 100)]
        dac = spec.class_map[(PortType.QSFP28, Reach.DAC, 100)]
        # §7: E_bit approximately equal across media on the same router.
        assert lr.e_bit_pj == pytest.approx(dac.e_bit_pj)
        # Optics pay their cost at plug-in; DACs barely.
        assert lr.p_trx_in_w > 25 * dac.p_trx_in_w

    def test_8201_32fh(self):
        spec = router_spec("8201-32FH")
        assert spec.p_base_w == 253.0
        truth = spec.class_map[(PortType.QSFP, Reach.DAC, 100)]
        assert truth.p_port_w == pytest.approx(0.94)
        assert truth.e_bit_pj == pytest.approx(3)

    def test_n540x_imprecise_epkt_kept(self):
        # The daggered -48 nJ is deliberately preserved.
        spec = router_spec("N540X-8Z16G-SYS-A")
        truth = spec.class_map[(PortType.SFP, Reach.T, 1)]
        assert truth.e_pkt_nj == pytest.approx(-48)


class TestTable6Encoding:
    def test_wedge(self):
        spec = router_spec("Wedge 100BF-32X")
        assert spec.p_base_w == pytest.approx(108)
        truth = spec.class_map[(PortType.QSFP28, Reach.DAC, 100)]
        assert truth.e_bit_pj == pytest.approx(1.7)
        assert truth.e_pkt_nj == pytest.approx(7.2)

    def test_catalyst_3560_epkt_dominates(self):
        # 100M access switch: enormous per-packet cost (193 nJ).
        spec = router_spec("Catalyst 3560")
        truth = spec.class_map[(PortType.RJ45, Reach.T, 0.1)]
        assert truth.e_pkt_nj == pytest.approx(193.1)

    def test_vsp_tiny_base(self):
        assert router_spec("VSP-4900").p_base_w == pytest.approx(8.2)


class TestDeviceLists:
    def test_eight_modelled_devices(self):
        assert len(MODELLED_DEVICES) == 8
        for name in MODELLED_DEVICES:
            assert name in ROUTER_CATALOG

    def test_eight_table1_devices(self):
        assert len(TABLE1_DEVICES) == 8
        assert set(TABLE1_MEASURED_MEDIAN_W) == set(TABLE1_DEVICES)

    def test_table1_cisco8000_underestimates(self):
        # The surprise rows: datasheet below measured.
        for name in ("8201-32FH", "8201-24H8FH"):
            spec = router_spec(name)
            assert (spec.datasheet.typical_w
                    < TABLE1_MEASURED_MEDIAN_W[name])

    def test_table1_others_overestimate(self):
        for name in TABLE1_DEVICES:
            if name.startswith("8201"):
                continue
            spec = router_spec(name)
            assert (spec.datasheet.typical_w
                    > TABLE1_MEASURED_MEDIAN_W[name])


class TestSpecBehaviour:
    def test_unknown_model(self):
        with pytest.raises(KeyError, match="known models"):
            router_spec("CRS-1")

    def test_total_ports(self):
        assert router_spec("NCS-55A1-24H").total_ports == 24
        assert router_spec("Nexus 93108TC-FX3P").total_ports == 54

    def test_find_class_exact(self):
        spec = router_spec("NCS-55A1-24H")
        truth = spec.find_class(PortType.QSFP28, Reach.DAC, 50)
        assert truth.p_port_w == pytest.approx(0.18)

    def test_find_class_media_fallback_reuses_router_terms(self):
        # Same port/speed, uncharacterised media: router-side terms stay,
        # transceiver split comes from the module catalog.
        spec = router_spec("NCS-55A1-24H")
        truth = spec.find_class(PortType.QSFP28, Reach.CWDM4, 100)
        assert truth.p_port_w == pytest.approx(0.32)
        assert truth.p_trx_in_w == pytest.approx(2.4)

    def test_find_class_generic_fallback(self):
        spec = router_spec("ASR-920-24SZ-M")  # no lab classes at all
        truth = spec.find_class(PortType.SFP, Reach.LR, 1)
        assert truth.p_port_w == pytest.approx(0.05)  # Table 5 SFP value

    def test_duplicate_class_rejected(self):
        from repro.hardware.catalog import (InterfaceClassTruth, PortGroup,
                                            PsuConfig, DatasheetInfo,
                                            PsuSensorQuirk, RouterModelSpec)
        cls = InterfaceClassTruth(PortType.SFP, Reach.LR, 1,
                                  0.1, 0.1, 0.1, 1, 1, 0)
        with pytest.raises(ValueError, match="duplicate"):
            RouterModelSpec(
                name="dup", vendor="x", series="x", p_base_w=10,
                port_groups=(PortGroup(2, PortType.SFP),),
                interface_classes=(cls, cls),
                psu=PsuConfig(count=1, capacity_w=250),
                psu_quirk=PsuSensorQuirk.ACCURATE,
                datasheet=DatasheetInfo(typical_w=10, max_w=20,
                                        max_bandwidth_gbps=2))


class TestDefaultClassTruth:
    def test_table5_p_port_values(self):
        assert default_class_truth(PortType.SFP, Reach.LR, 1).p_port_w \
            == pytest.approx(0.05)
        assert default_class_truth(
            PortType.QSFP_DD, Reach.FR4, 400).p_port_w == pytest.approx(1.82)

    def test_energy_scales_with_speed_class(self):
        fast = default_class_truth(PortType.QSFP28, Reach.DAC, 100)
        slow = default_class_truth(PortType.SFP, Reach.T, 1)
        # §7: low-speed ports are far less energy-efficient per bit.
        assert slow.e_bit_pj > 3 * fast.e_bit_pj

    def test_uses_catalog_module_power(self):
        truth = default_class_truth(PortType.QSFP_DD, Reach.FR4, 400)
        assert truth.p_trx_in_w == pytest.approx(10.0)
