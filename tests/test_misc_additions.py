"""Smaller additions: Table-5 helper, the Autopower status page,
traffic-matrix conservation properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import PortType, VirtualRouter, router_spec
from repro.lab.power_meter import PowerSample
from repro.network.traffic import Demand, TrafficMatrix
from repro.sleep.savings import table5_from_models
from repro.telemetry.autopower import AutopowerServer


class TestTable5Helper:
    def test_averages_across_models(self, ncs_model):
        table = table5_from_models([ncs_model])
        assert PortType.QSFP28 in table
        assert table[PortType.QSFP28] == pytest.approx(0.32, rel=0.35)

    def test_feeds_plan_savings(self, small_fleet, ncs_model):
        from repro.network import FleetTrafficModel
        from repro.sleep import Hypnos, plan_savings
        traffic = FleetTrafficModel(small_fleet,
                                    rng=np.random.default_rng(13),
                                    n_demands=100)
        plan = Hypnos(small_fleet, traffic.matrix).plan(0, 3600.0)
        table = table5_from_models([ncs_model])
        estimate = plan_savings(small_fleet, plan,
                                small_fleet.total_wall_power_w(),
                                p_port_by_type=table)
        assert estimate.lower_w >= 0

    def test_empty_models(self):
        assert table5_from_models([]) == {}


class TestStatusPage:
    def test_renders_units_and_state(self):
        server = AutopowerServer()
        server.register("autopower-sw001")
        server.receive_chunk("autopower-sw001",
                             [PowerSample(0.0, 365.2),
                              PowerSample(0.5, 365.4)])
        server.register("autopower-sw002")
        server.stop_measurement("autopower-sw002")
        page = server.status_page()
        assert "autopower-sw001" in page
        assert "measuring" in page
        assert "stopped" in page
        assert "365.4 W" in page

    def test_empty_server(self):
        page = AutopowerServer().status_page()
        assert "unit" in page  # header only


class TestTrafficConservation:
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_volume_conserved_under_reroute(self, n_demands, n_removals,
                                            ):
        from repro.network import FleetConfig, build_switch_like_network
        config = FleetConfig(
            model_counts=(("NCS-55A1-24H", 3), ("ASR-920-24SZ-M", 4)),
            n_regional_pops=2, core_core_links=1)
        network = build_switch_like_network(config,
                                            rng=np.random.default_rng(5))
        hosts = sorted(network.routers)
        demands = [Demand(src=hosts[i % len(hosts)],
                          dst=hosts[(i * 3 + 1) % len(hosts)],
                          base_bps=1e9)
                   for i in range(n_demands)
                   if hosts[i % len(hosts)]
                   != hosts[(i * 3 + 1) % len(hosts)]]
        if not demands:
            return
        matrix = TrafficMatrix(network, demands)
        routed = sum(1 for p in matrix.paths if p)
        loads = matrix.base_link_loads()

        # Remove up to n_removals currently-unused links: routed volume
        # (hop-weighted) must not change at all.
        unused = [lid for lid, load in loads.items() if load == 0]
        removed = set(unused[:n_removals])
        if removed:
            rerouted = matrix.reroute_without(removed)
            assert sum(1 for p in rerouted.paths if p) == routed
            assert rerouted.base_link_loads().keys() \
                == (loads.keys() - removed)

    def test_loads_nonnegative_and_bounded(self, small_fleet, rng):
        from repro.network import FleetTrafficModel
        model = FleetTrafficModel(small_fleet, rng=rng, n_demands=100)
        for t in (0.0, 3600.0, 86400.0):
            for rate in model.internal_rates_at(t).values():
                assert rate >= 0
            for rate in model.external_rates_at(t).values():
                assert rate >= 0


class TestPortSpeedConfiguration:
    """Clocking ports down (Table 2 a's 50/25G rows) end to end."""

    def test_speed_change_changes_class(self, rng):
        router = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                               noise_std_w=0)
        port = router.port(0)
        port.plug("QSFP28-100G-DAC")
        assert port.class_truth().p_port_w == pytest.approx(0.32)
        port.set_speed(25)
        assert port.class_truth().p_port_w == pytest.approx(0.10)
        port.set_speed(None)
        assert port.class_truth().p_port_w == pytest.approx(0.32)

    def test_invalid_speed_rejected(self, rng):
        router = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng)
        with pytest.raises(ValueError):
            router.port(0).set_speed(0)
