"""The Network Power Zoo database."""

import json

import pytest

from repro.core.model import PowerModel, fitted
from repro.zoo import (
    DatasheetRecord,
    MeasurementRecord,
    NetworkPowerZoo,
    PowerModelRecord,
    Provenance,
    PsuRecord,
)


@pytest.fixture
def provenance():
    return Provenance(contributor="nsg-ethz", method="lab-measurement",
                      date="2025-10-01")


@pytest.fixture
def populated(provenance, ncs_model):
    zoo = NetworkPowerZoo()
    zoo.add(DatasheetRecord(
        vendor="Cisco", model="NCS-55A1-24H", typical_w=600, max_w=715,
        max_bandwidth_gbps=2400, release_year=2017,
        provenance=Provenance("w", "datasheet-extraction")))
    zoo.add(MeasurementRecord(
        vendor="Cisco", model="NCS-55A1-24H", hostname="sw042",
        median_w=358, mean_w=359, duration_s=86400 * 30,
        provenance=Provenance("switch", "snmp")))
    zoo.add(PowerModelRecord(vendor="Cisco", model="NCS-55A1-24H",
                             power_model=ncs_model, provenance=provenance))
    zoo.add(PsuRecord(vendor="Cisco", model="8201-32FH", hostname="sw001",
                      capacity_w=2000, load_fraction=0.08, efficiency=0.74,
                      provenance=Provenance("switch", "snmp")))
    return zoo


class TestContribution:
    def test_summary(self, populated):
        assert populated.summary() == {
            "datasheet": 1, "measurement": 1, "power-model": 1, "psu": 1}

    def test_unknown_record_rejected(self):
        zoo = NetworkPowerZoo()
        with pytest.raises(TypeError, match="unsupported record"):
            zoo.add(object())

    def test_add_all(self, provenance):
        zoo = NetworkPowerZoo()
        records = [
            PsuRecord(vendor="Cisco", model="X", hostname=f"h{i}",
                      capacity_w=250, load_fraction=0.1, efficiency=0.8,
                      provenance=provenance)
            for i in range(5)
        ]
        assert zoo.add_all(records) == 5


class TestQueries:
    def test_for_model(self, populated):
        records = populated.for_model("NCS-55A1-24H")
        assert len(records) == 3
        only_measurements = populated.for_model("NCS-55A1-24H",
                                                kind="measurement")
        assert len(only_measurements) == 1

    def test_vendors_and_models(self, populated):
        assert populated.vendors() == ["Cisco"]
        assert populated.models() == ["8201-32FH", "NCS-55A1-24H"]
        assert populated.models(vendor="Juniper") == []

    def test_unknown_kind(self, populated):
        with pytest.raises(KeyError):
            populated.records("blueprints")


class TestSerialisation:
    def test_json_round_trip(self, populated):
        text = populated.to_json()
        restored = NetworkPowerZoo.from_json(text)
        assert restored.summary() == populated.summary()
        model_record = restored.records("power-model")[0]
        assert model_record.power_model.p_base_w.value == pytest.approx(
            320.0, rel=0.05)
        assert model_record.provenance.contributor == "nsg-ethz"

    def test_json_is_valid_and_sorted(self, populated):
        payload = json.loads(populated.to_json())
        assert set(payload) == {"datasheet", "measurement", "power-model",
                                "psu", "schema"}

    def test_unknown_kind_in_document(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            NetworkPowerZoo.from_json('{"blueprints": []}')
