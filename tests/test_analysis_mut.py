"""NP-MUT: FleetState column writes outside the engine kernels."""

import textwrap

import pytest

from repro.analysis import check_sources


def src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def mut(result) -> list:
    return [f for f in result.findings if f.rule_id == "NP-MUT-001"]


ENGINE = src('''
    """The columnar engine (fixture)."""


    class FleetState:
        """Columnar fleet state."""

        def __init__(self) -> None:
            """Init."""
            self.static_w = [0.0]

        def patch_routers(self, patch: dict) -> None:
            """The sanctioned write path."""
            self.static_w[0] = float(patch.get("w", 0.0))
    ''')


class TestColumnWrites:
    def test_annotated_local_write_is_flagged(self):
        result = check_sources({
            "network/engine.py": ENGINE,
            "serve/state.py": src('''
                """Serve layer."""
                from repro.network.engine import FleetState


                def tweak(state: FleetState) -> None:
                    """A stray element store."""
                    state.static_w[0] = 99.0
                '''),
        })
        findings = mut(result)
        assert len(findings) == 1
        message = findings[0].message
        assert "static_w" in message
        assert "repro.serve.state.tweak" in message
        assert "patch_routers" in message

    def test_column_rebind_is_flagged(self):
        result = check_sources({
            "network/engine.py": ENGINE,
            "serve/state.py": src('''
                """Serve layer."""
                from repro.network.engine import FleetState


                def swap(state: FleetState) -> None:
                    """Rebinding the whole column is just as bad."""
                    state.static_w = [1.0]
                '''),
        })
        assert len(mut(result)) == 1

    def test_write_through_owning_object_is_flagged(self):
        result = check_sources({
            "network/engine.py": ENGINE,
            "serve/state.py": src('''
                """Serve layer."""
                from repro.network.engine import FleetState


                class Service:
                    """Holds a state."""

                    def __init__(self) -> None:
                        """Init."""
                        self.state = FleetState()

                    def tweak(self) -> None:
                        """Write via the attribute chain."""
                        self.state.static_w[0] = 1.0
                '''),
        })
        findings = mut(result)
        assert len(findings) == 1
        assert "Service.tweak" in findings[0].message

    def test_reads_are_fine(self):
        result = check_sources({
            "network/engine.py": ENGINE,
            "serve/state.py": src('''
                """Serve layer."""
                from repro.network.engine import FleetState


                def total(state: FleetState) -> float:
                    """Reads never desynchronise anything."""
                    return sum(state.static_w)
                '''),
        })
        assert mut(result) == []

    def test_engine_module_is_exempt(self):
        # The writes inside network/engine.py itself (patch_routers)
        # must not self-flag: mut_allow covers the kernel module.
        result = check_sources({"network/engine.py": ENGINE})
        assert mut(result) == []

    def test_other_class_with_same_column_name_is_fine(self):
        result = check_sources({
            "network/engine.py": ENGINE,
            "serve/state.py": src('''
                """Serve layer."""


                class Scratch:
                    """Not a FleetState."""

                    def __init__(self) -> None:
                        """Init."""
                        self.static_w = [0.0]


                def tweak(scratch: Scratch) -> None:
                    """Writing an unrelated class is fine."""
                    scratch.static_w[0] = 1.0
                '''),
        })
        assert mut(result) == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
