"""The §4.3 temperature factor: pseudo-constant until it isn't."""

import numpy as np
import pytest

from repro import units
from repro.hardware import VirtualRouter, router_spec
from repro.network import (
    AmbientChange,
    FleetTrafficModel,
    HeatWave,
    NetworkSimulation,
)


class TestThermalPhysics:
    def test_no_extra_power_at_normal_ambient(self, quiet_router):
        # Server rooms hold 20-24 °C; the model's omission is harmless.
        assert quiet_router.thermal_power_w() == 0.0
        assert quiet_router.wall_referred_power_w() == pytest.approx(320.0)

    def test_fans_ramp_above_setpoint(self, quiet_router):
        quiet_router.set_ambient(34.0)
        # 10 °C above the set point at 1.2 %/°C of base power.
        assert quiet_router.thermal_power_w() == pytest.approx(
            320.0 * 0.012 * 10.0)
        assert quiet_router.wall_referred_power_w() > 320.0

    def test_monotone_in_temperature(self, quiet_router):
        powers = []
        for temp in (22, 26, 30, 34, 38):
            quiet_router.set_ambient(temp)
            powers.append(quiet_router.wall_referred_power_w())
        assert powers == sorted(powers)

    def test_implausible_temperature_rejected(self, quiet_router):
        with pytest.raises(ValueError, match="plausible"):
            quiet_router.set_ambient(80.0)
        with pytest.raises(ValueError):
            quiet_router.set_ambient(-40.0)

    def test_magnitude_comparable_to_fig8(self, quiet_router):
        # A serious cooling failure rivals the Fig. 8 OS-update bump --
        # exactly why §4.3 warns about unmodelled environment factors.
        quiet_router.set_ambient(36.0)
        bump = quiet_router.thermal_power_w()
        assert 30 < bump < 60


class TestThermalEvents:
    def test_ambient_change_event(self, small_fleet, rng):
        traffic = FleetTrafficModel(small_fleet, rng=rng, n_demands=40)
        sim = NetworkSimulation(small_fleet, traffic,
                                rng=np.random.default_rng(4))
        host = sorted(small_fleet.routers)[0]
        sim.run(duration_s=units.hours(1), step_s=900,
                events=[AmbientChange(at_s=900, hostname=host,
                                      ambient_c=32.0)])
        assert small_fleet.routers[host].ambient_c == 32.0

    def test_heat_wave_hits_everyone(self, small_fleet, rng):
        traffic = FleetTrafficModel(small_fleet, rng=rng, n_demands=40)
        sim = NetworkSimulation(small_fleet, traffic,
                                rng=np.random.default_rng(4))
        result = sim.run(
            duration_s=units.hours(8), step_s=900,
            events=[HeatWave(at_s=units.hours(4), ambient_c=31.0)])
        assert all(r.ambient_c == 31.0
                   for r in small_fleet.routers.values())
        total = result.total_power
        before = total.slice(0, units.hours(4)).mean()
        after = total.slice(units.hours(4) + 900, units.hours(8)).mean()
        assert after > before + 20  # fleet-wide fan ramp


class TestModelBlindSpot:
    """§4.3's point: an unmodelled factor becomes a prediction offset."""

    def test_temperature_creates_offset_without_config_change(
            self, ncs_model, rng):
        router = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                               noise_std_w=0.0)
        for i in (0, 1):
            router.port(i).plug("QSFP28-100G-DAC")
            router.port(i).set_admin(True)
        from repro.hardware import connect
        connect(router.port(0), router.port(1))

        from repro.core.model import InterfaceClassKey, InterfaceState
        key = InterfaceClassKey("QSFP28", "Passive DAC", 100)
        states = [InterfaceState(key=key) for _ in (0, 1)]
        predicted = ncs_model.predict_power_w(states)

        cool_error = abs(router.wall_power_w() - predicted)
        router.set_ambient(34.0)
        hot_error = abs(router.wall_power_w() - predicted)
        # The inventory and counters are unchanged -- the model cannot
        # know, and its error grows by the thermal wattage.
        assert hot_error > cool_error + 20
