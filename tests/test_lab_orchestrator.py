"""The NetPowerBench orchestrator: the §5.2 experiment protocol."""

import numpy as np
import pytest

from repro.hardware import VirtualRouter, router_spec
from repro.lab import ExperimentPlan, Orchestrator


@pytest.fixture
def orchestrator(quiet_router, rng):
    return Orchestrator(quiet_router, rng=rng)


@pytest.fixture
def quick_plan():
    return ExperimentPlan(
        trx_name="QSFP28-100G-DAC", n_pairs_values=(1, 2, 4),
        rates_gbps=(10, 50, 100), packet_sizes=(256, 1500),
        snake_n_pairs=2, measure_duration_s=10, settle_time_s=1)


class TestIndividualExperiments:
    def test_base(self, orchestrator, quick_plan):
        frame = orchestrator.run_base(quick_plan)
        assert frame.experiment == "base"
        assert frame.summary.mean_w == pytest.approx(
            orchestrator.dut.wall_power_w(include_noise=False), rel=0.02)

    def test_idle_increases_with_pairs(self, orchestrator, quick_plan):
        # Plugging more LR4 optics must raise idle power measurably.
        plan = ExperimentPlan(trx_name="QSFP28-100G-LR4",
                              measure_duration_s=10, settle_time_s=1)
        one = orchestrator.run_idle(plan, 1)
        four = orchestrator.run_idle(plan, 4)
        # 6 extra modules at 2.79 W each.
        assert four.summary.mean_w - one.summary.mean_w \
            == pytest.approx(6 * 2.79, abs=1.5)

    def test_port_vs_trx_ladder(self, orchestrator, quick_plan):
        idle = orchestrator.run_idle(quick_plan, 4)
        port = orchestrator.run_port(quick_plan, 4)
        trx = orchestrator.run_trx(quick_plan, 4)
        assert idle.summary.mean_w < port.summary.mean_w < trx.summary.mean_w

    def test_snake_carries_traffic(self, orchestrator, quick_plan):
        trx = orchestrator.run_trx(quick_plan, 2)
        snake = orchestrator.run_snake(quick_plan, 2, 100, 256)
        assert snake.flow is not None
        assert snake.flow.packet_bytes == 256
        assert snake.summary.mean_w > trx.summary.mean_w

    def test_snake_at_lower_configured_speed(self, orchestrator):
        plan = ExperimentPlan(trx_name="QSFP28-100G-DAC", speed_gbps=25,
                              measure_duration_s=10, settle_time_s=1)
        frame = orchestrator.run_snake(plan, 2, 25, 1500)
        assert frame.speed_gbps == 25


class TestFullSuite:
    def test_suite_structure(self, orchestrator, quick_plan):
        suite = orchestrator.run_suite(quick_plan)
        assert suite.dut_model == "NCS-55A1-24H"
        assert len(suite.of("base")) == 1
        assert len(suite.of("idle")) == 3
        assert len(suite.of("port")) == 3
        assert len(suite.of("trx")) == 3
        assert len(suite.of("snake")) == 6  # 3 rates x 2 sizes
        by_size = suite.snake_by_packet_size()
        assert set(by_size) == {256, 1500}

    def test_suite_resets_dut(self, orchestrator, quick_plan):
        orchestrator.run_suite(quick_plan)
        assert all(not p.plugged for p in orchestrator.dut.ports)

    def test_rates_clipped_to_speed(self, orchestrator):
        plan = ExperimentPlan(trx_name="QSFP28-100G-DAC", speed_gbps=25,
                              rates_gbps=(10, 25, 50, 100),
                              n_pairs_values=(1, 2), packet_sizes=(1500,),
                              measure_duration_s=5, settle_time_s=1)
        suite = orchestrator.run_suite(plan)
        assert all(f.flow.bit_rate_gbps <= 25.1 for f in suite.of("snake"))

    def test_too_many_pairs_rejected(self, orchestrator):
        plan = ExperimentPlan(trx_name="QSFP28-100G-DAC",
                              n_pairs_values=(50, 60),
                              measure_duration_s=5)
        with pytest.raises(ValueError, match="pair"):
            orchestrator.run_suite(plan)

    def test_base_power_property(self, orchestrator, quick_plan):
        suite = orchestrator.run_suite(quick_plan)
        assert suite.base_power_w == pytest.approx(
            orchestrator.dut.wall_power_w(include_noise=False), rel=0.02)

    def test_rj45_device_suite(self, rng):
        # Fixed-copper platforms run the same protocol via pseudo-modules.
        dut = VirtualRouter(router_spec("Catalyst 3560"), rng=rng,
                            noise_std_w=0.0)
        orchestrator = Orchestrator(dut, rng=rng)
        plan = ExperimentPlan(trx_name="RJ45-100M-T",
                              n_pairs_values=(2, 4, 8),
                              rates_gbps=(0.02, 0.05, 0.1),
                              packet_sizes=(64, 1500), snake_n_pairs=4,
                              measure_duration_s=5, settle_time_s=1)
        suite = orchestrator.run_suite(plan)
        assert suite.base_power_w == pytest.approx(40.0, rel=0.1)


class TestMeasurementFrames:
    def test_unknown_experiment_rejected(self):
        from repro.lab.orchestrator import MeasurementFrame
        from repro.lab.power_meter import PowerSummary
        summary = PowerSummary(1, 0, 1, 2, 1)
        with pytest.raises(ValueError, match="unknown experiment"):
            MeasurementFrame(experiment="warp", n_pairs=1, trx_name=None,
                             speed_gbps=None, summary=summary)

    def test_measure_validates_arguments(self, orchestrator):
        with pytest.raises(ValueError):
            orchestrator.measure(0, 1)
        with pytest.raises(ValueError):
            orchestrator.measure(10, 0)
