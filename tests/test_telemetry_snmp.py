"""SNMP agent, collector, and the one-time PSU sensor export."""

import numpy as np
import pytest

from repro.hardware import VirtualRouter, connect, router_spec
from repro.telemetry.snmp import SnmpAgent, SnmpCollector


@pytest.fixture
def busy_router(rng):
    r = VirtualRouter(router_spec("NCS-55A1-24H"), hostname="lab-ncs",
                      rng=rng, noise_std_w=0.1)
    for i in range(4):
        r.port(i).plug("QSFP28-100G-DAC")
        r.port(i).set_admin(True)
    connect(r.port(0), r.port(1))
    connect(r.port(2), r.port(3))
    r.port(0).offer_traffic(rx_bps=5e9, tx_bps=5e9, packet_bytes=700)
    return r


class TestSnmpAgent:
    def test_poll_power(self, busy_router):
        agent = SnmpAgent(busy_router)
        power = agent.poll_power()
        assert power == pytest.approx(busy_router.wall_power_w(), rel=0.1)

    def test_poll_counters_keys(self, busy_router):
        agent = SnmpAgent(busy_router)
        counters = agent.poll_counters()
        assert set(counters) == {p.name for p in busy_router.ports}

    def test_psu_inventory(self, busy_router):
        entries = SnmpAgent(busy_router).psu_inventory()
        assert len(entries) == 2
        assert all(e.capacity_w == 1100 for e in entries)
        assert all(e.router == "lab-ncs" for e in entries)

    def test_sensor_export_shape(self, busy_router):
        exports = SnmpAgent(busy_router).sensor_export()
        assert len(exports) == 2
        for export in exports:
            assert export.input_w > 0
            assert export.output_w > 0
            assert 0 < export.load_fraction < 1
            assert export.efficiency <= 1.0  # capped


class TestSnmpCollector:
    def test_collects_power_for_all(self, busy_router, rng):
        other = VirtualRouter(router_spec("ASR-920-24SZ-M"),
                              hostname="lab-asr", rng=rng)
        collector = SnmpCollector([busy_router, other])
        for t in (300.0, 600.0, 900.0):
            busy_router.advance(300)
            other.advance(300)
            collector.record(t)
        traces = collector.finalize()
        assert set(traces) == {"lab-ncs", "lab-asr"}
        assert len(traces["lab-ncs"].power) == 3
        assert traces["lab-ncs"].router_model == "NCS-55A1-24H"

    def test_absent_power_is_nan(self, rng):
        silent = VirtualRouter(router_spec("N540X-8Z16G-SYS-A"),
                               hostname="lab-n540x", rng=rng)
        collector = SnmpCollector([silent])
        collector.record(300.0)
        trace = collector.finalize()["lab-n540x"]
        assert np.isnan(trace.power.values).all()

    def test_counters_only_for_detailed_hosts(self, busy_router, rng):
        other = VirtualRouter(router_spec("ASR-920-24SZ-M"),
                              hostname="lab-asr", rng=rng)
        other.port(0).plug("SFP-1G-LX")
        collector = SnmpCollector([busy_router, other],
                                  detailed_hosts=["lab-ncs"])
        collector.record(300.0)
        traces = collector.finalize()
        assert traces["lab-ncs"].interfaces   # plugged ports recorded
        assert not traces["lab-asr"].interfaces

    def test_counters_only_for_plugged_ports(self, busy_router):
        collector = SnmpCollector([busy_router])
        collector.record(300.0)
        trace = collector.finalize()["lab-ncs"]
        assert set(trace.interfaces) == {"Eth0/0", "Eth0/1", "Eth0/2",
                                         "Eth0/3"}

    def test_counter_rates_recover_traffic(self, busy_router):
        collector = SnmpCollector([busy_router])
        for step in range(4):
            collector.record(step * 300.0)
            busy_router.advance(300)
        trace = collector.finalize()["lab-ncs"]
        rx, _tx = trace.interfaces["Eth0/0"].octet_rates()
        # 5 Gbps physical with 700 B payloads -> octet rate just below
        # 5e9/8 (preamble and IPG are not counted in octets).
        expected = 5e9 / 8 * (700 + 18) / (700 + 38)
        assert rx.values[-1] == pytest.approx(expected, rel=0.01)

    def test_unknown_detailed_host_rejected(self, busy_router):
        with pytest.raises(ValueError, match="not in the fleet"):
            SnmpCollector([busy_router], detailed_hosts=["ghost"])

    def test_inventory_captured(self, busy_router):
        collector = SnmpCollector([busy_router])
        collector.record(0.0)
        trace = collector.finalize()["lab-ncs"]
        assert trace.inventory["Eth0/0"] == "QSFP28-100G-DAC"
        assert trace.inventory["Eth0/10"] is None

    def test_total_octet_rate(self, busy_router):
        collector = SnmpCollector([busy_router])
        for step in range(3):
            collector.record(step * 300.0)
            busy_router.advance(300)
        trace = collector.finalize()["lab-ncs"]
        total = trace.total_octet_rate()
        assert len(total) == 2
        assert np.all(total.values > 0)


class TestSensorExports:
    def test_fleet_wide(self, busy_router, rng):
        other = VirtualRouter(router_spec("ASR-920-24SZ-M"),
                              hostname="lab-asr", rng=rng)
        collector = SnmpCollector([busy_router, other])
        exports = collector.sensor_exports()
        assert len(exports) == 4  # two PSUs each
        routers = {e.router for e in exports}
        assert routers == {"lab-ncs", "lab-asr"}
