"""The §5.2 derivation chain: does it recover the ground truth?

These are the library's most important tests: the orchestrator measures a
VirtualRouter through the same noisy channels the paper's lab had (meter
gain error, PSU instance deviations, traffic generator undershoot), and
the derivation must recover the catalog's Table 2 parameters.
"""

import numpy as np
import pytest

from repro.core import DerivationError, derive_base, derive_class, derive_power_model
from repro.core.model import InterfaceClassKey
from repro.hardware import VirtualRouter, router_spec
from repro.lab import ExperimentPlan, ExperimentSuite, Orchestrator


class TestNcsRoundTrip:
    """Table 2 (a): NCS-55A1-24H, QSFP28 passive DAC at 100G."""

    def test_p_base(self, ncs_model):
        assert ncs_model.p_base_w.value == pytest.approx(320.0, rel=0.05)

    @pytest.fixture
    def iface(self, ncs_model):
        return ncs_model.interfaces[
            InterfaceClassKey("QSFP28", "Passive DAC", 100)]

    def test_p_port(self, iface):
        assert iface.p_port_w.value == pytest.approx(0.32, rel=0.25)

    def test_p_trx_in(self, iface):
        # Tiny truth value (0.02 W): assert absolute closeness.
        assert iface.p_trx_in_w.value == pytest.approx(0.02, abs=0.02)

    def test_p_trx_up(self, iface):
        assert iface.p_trx_up_w.value == pytest.approx(0.19, rel=0.35)

    def test_e_bit(self, iface):
        assert iface.e_bit_pj.value == pytest.approx(22.0, rel=0.15)

    def test_e_pkt(self, iface):
        assert iface.e_pkt_nj.value == pytest.approx(58.0, rel=0.15)

    def test_p_offset(self, iface):
        assert iface.p_offset_w.value == pytest.approx(0.37, rel=0.35)

    def test_uncertainties_reported(self, iface):
        assert iface.e_bit_pj.has_uncertainty
        assert iface.e_bit_pj.stderr < 0.3 * iface.e_bit_pj.value


class TestDerivationDiagnostics:
    def test_fits_are_linear(self, ncs_suite):
        _model, report = derive_class(ncs_suite)
        assert report.port_fit.r_squared > 0.98
        assert report.trx_fit.r_squared > 0.98
        assert report.energy_fit.r_squared > 0.99
        assert not report.warnings

    def test_snake_fits_per_packet_size(self, ncs_suite):
        _model, report = derive_class(ncs_suite)
        assert set(report.snake_fits) == {64, 256, 512, 1024, 1500}
        # Power rises with rate at every payload size.
        assert all(fit.slope > 0 for fit in report.snake_fits.values())

    def test_alpha_decreases_with_packet_size(self, ncs_suite):
        # alpha_L = E_bit + E_pkt / (8 (L + Lh)) is larger for small L.
        _model, report = derive_class(ncs_suite)
        alphas = {L: fit.slope for L, fit in report.snake_fits.items()}
        assert alphas[64] > alphas[1500]


class TestSuiteValidation:
    def _suite_missing(self, ncs_suite, drop):
        pruned = ExperimentSuite(
            dut_model=ncs_suite.dut_model, port_type=ncs_suite.port_type,
            trx_name=ncs_suite.trx_name, speed_gbps=ncs_suite.speed_gbps,
            frames=[f for f in ncs_suite.frames if f.experiment != drop])
        return pruned

    def test_missing_base(self, ncs_suite):
        with pytest.raises(DerivationError, match="Base"):
            derive_base(self._suite_missing(ncs_suite, "base"))

    @pytest.mark.parametrize("experiment", ["idle", "port", "trx"])
    def test_missing_static_experiments(self, ncs_suite, experiment):
        with pytest.raises(DerivationError):
            derive_class(self._suite_missing(ncs_suite, experiment))

    def test_no_snake_yields_zero_dynamic_with_warning(self, ncs_suite):
        model, report = derive_class(self._suite_missing(ncs_suite, "snake"))
        assert model.e_bit_pj.value == 0.0
        assert any("Snake" in w or "snake" in w for w in report.warnings)

    def test_empty_suites_rejected(self):
        with pytest.raises(DerivationError):
            derive_power_model([])

    def test_mixed_duts_rejected(self, ncs_suite):
        other = ExperimentSuite(dut_model="Wedge 100BF-32X",
                                port_type=ncs_suite.port_type,
                                trx_name=ncs_suite.trx_name,
                                speed_gbps=100,
                                frames=list(ncs_suite.frames))
        with pytest.raises(DerivationError, match="different DUTs"):
            derive_power_model([ncs_suite, other])


class TestSecondDevice:
    """Table 6 (a): the Wedge 100BF-32X round-trips too."""

    @pytest.fixture(scope="class")
    def wedge_model(self):
        rng = np.random.default_rng(77)
        dut = VirtualRouter(router_spec("Wedge 100BF-32X"), rng=rng,
                            noise_std_w=0.15)
        orchestrator = Orchestrator(dut, rng=rng)
        plan = ExperimentPlan(
            trx_name="QSFP28-100G-DAC",
            n_pairs_values=(1, 2, 4, 8, 12, 16),
            rates_gbps=(2.5, 10, 25, 50, 75, 100),
            packet_sizes=(64, 512, 1500), snake_n_pairs=8,
            measure_duration_s=30, settle_time_s=5)
        model, _ = derive_power_model([orchestrator.run_suite(plan)])
        return model

    def test_p_base(self, wedge_model):
        assert wedge_model.p_base_w.value == pytest.approx(108.0, rel=0.05)

    def test_energy_terms(self, wedge_model):
        iface = wedge_model.interfaces[
            InterfaceClassKey("QSFP28", "Passive DAC", 100)]
        assert iface.e_bit_pj.value == pytest.approx(1.7, abs=0.6)
        assert iface.e_pkt_nj.value == pytest.approx(7.2, rel=0.3)
        assert iface.p_port_w.value == pytest.approx(0.88, rel=0.3)


class TestMultiClassModel:
    def test_lower_speed_class_in_same_model(self, rng):
        # Table 2 (a)'s 25G row: same module clocked down.
        dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                            noise_std_w=0.2)
        orchestrator = Orchestrator(dut, rng=rng)
        plans = [
            ExperimentPlan(trx_name="QSFP28-100G-DAC", speed_gbps=speed,
                           n_pairs_values=(1, 4, 8, 12),
                           rates_gbps=(2.5, 10, 25),
                           packet_sizes=(256, 1500), snake_n_pairs=4,
                           measure_duration_s=20, settle_time_s=2)
            for speed in (100, 25)
        ]
        suites = [orchestrator.run_suite(plan) for plan in plans]
        model, _ = derive_power_model(suites)
        assert len(model.interfaces) == 2
        p100 = model.interfaces[InterfaceClassKey("QSFP28", "Passive DAC", 100)]
        p25 = model.interfaces[InterfaceClassKey("QSFP28", "Passive DAC", 25)]
        # 25G ports cost less to run than 100G ports (0.10 vs 0.32 truth).
        assert p25.p_port_w.value < p100.p_port_w.value
