"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* input, not just the scenarios the
other test modules pick: monotonicity of the power physics, exactness of
serialisation round-trips, robustness of the counter arithmetic, and
conservation laws of the fleet plumbing.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import units
from repro.core.model import (
    FittedValue,
    InterfaceClassKey,
    InterfaceModel,
    PowerModel,
    fitted,
)
from repro.hardware.psu import (
    PFE600_CURVE,
    PSUGroup,
    PSUInstance,
    PSUModel,
    ScaledLossCurve,
    SharingPolicy,
)
from repro.hardware.router import COUNTER_64_WRAP, Counters
from repro.telemetry.traces import CounterSeries, TimeSeries


# ---------------------------------------------------------------------------
# PSU physics
# ---------------------------------------------------------------------------


class TestPsuInvariants:
    @given(st.floats(min_value=0.4, max_value=2.5),
           st.floats(min_value=1.0, max_value=550.0))
    @settings(max_examples=60)
    def test_wall_power_exceeds_output(self, scale, output):
        curve = ScaledLossCurve(base=PFE600_CURVE, scale=scale)
        assert curve.input_power(output, 600) > output

    @given(st.floats(min_value=0.4, max_value=2.5),
           st.floats(min_value=1.0, max_value=500.0),
           st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=60)
    def test_wall_power_monotone(self, scale, output, delta):
        curve = ScaledLossCurve(base=PFE600_CURVE, scale=scale)
        assume(output + delta <= 570)
        assert curve.input_power(output + delta, 600) \
            > curve.input_power(output, 600)

    @given(st.floats(min_value=-0.2, max_value=0.2),
           st.floats(min_value=10.0, max_value=500.0))
    @settings(max_examples=60)
    def test_instance_offset_realised_at_reference(self, offset, output):
        model = PSUModel(name="p", capacity_w=600, curve=PFE600_CURVE)
        psu = PSUInstance(model=model, efficiency_offset=offset)
        nominal = PFE600_CURVE.efficiency(psu.reference_load)
        target = float(np.clip(nominal + offset, 0.25, 0.98))
        assert psu.efficiency_at(psu.reference_load * 600) \
            == pytest.approx(target, abs=1e-9)

    @given(st.integers(min_value=1, max_value=4),
           st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=40)
    def test_balanced_shares_sum_to_demand(self, n, demand):
        model = PSUModel(name="p", capacity_w=600, curve=PFE600_CURVE)
        group = PSUGroup(instances=[PSUInstance(model=model)
                                    for _ in range(n)],
                         policy=SharingPolicy.BALANCED)
        assert sum(group.output_shares(demand)) == pytest.approx(demand)


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


class TestCounterInvariants:
    @given(st.lists(st.floats(min_value=0, max_value=1e12),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_counters_never_exceed_wrap(self, increments):
        counters = Counters()
        for inc in increments:
            counters.add(inc, inc, inc / 100, inc / 100)
        assert 0 <= counters.rx_octets < COUNTER_64_WRAP
        assert 0 <= counters.tx_packets < COUNTER_64_WRAP

    @given(st.lists(st.integers(min_value=0, max_value=10**14),
                    min_size=2, max_size=25),
           st.floats(min_value=1.0, max_value=3600.0))
    @settings(max_examples=50)
    def test_rates_recover_increments(self, increments, period):
        counts = np.cumsum(np.array(increments, dtype=np.uint64))
        ts = np.arange(len(counts), dtype=float) * period
        rates = CounterSeries(ts, counts).rates()
        expected = np.array(increments[1:], dtype=float) / period
        np.testing.assert_allclose(rates.values, expected, rtol=1e-9)

    @given(st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=30)
    def test_wrap_transparent(self, delta):
        start = COUNTER_64_WRAP - delta // 2 - 1
        cs = CounterSeries(np.array([0.0, 10.0]),
                           np.array([start, (start + delta)
                                     % COUNTER_64_WRAP], dtype=np.uint64))
        assert cs.rates().values[0] == pytest.approx(delta / 10.0)


# ---------------------------------------------------------------------------
# Time series
# ---------------------------------------------------------------------------


class TestTimeSeriesInvariants:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=2, max_size=200),
           st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=50)
    def test_resample_preserves_mean_on_uniform_grid(self, values, period):
        ts = TimeSeries(np.arange(len(values), dtype=float), values)
        out = ts.resample(period)
        if len(out.valid()):
            # Bin means of a partition can only average the same numbers.
            assert (np.nanmin(out.values) >= np.min(values) - 1e-6)
            assert (np.nanmax(out.values) <= np.max(values) + 1e-6)

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3),
                    min_size=1, max_size=50),
           st.floats(min_value=-100, max_value=100))
    @settings(max_examples=50)
    def test_shift_is_exact(self, values, offset):
        ts = TimeSeries(np.arange(len(values), dtype=float), values)
        np.testing.assert_allclose(ts.shifted(offset).values,
                                   np.array(values) + offset)


# ---------------------------------------------------------------------------
# Model serialisation & evaluation
# ---------------------------------------------------------------------------


def _model_strategy():
    key_st = st.builds(
        InterfaceClassKey,
        port_type=st.sampled_from(["SFP", "SFP+", "QSFP28", "QSFP-DD"]),
        reach=st.sampled_from(["LR4", "Passive DAC", "T", "SR"]),
        speed_gbps=st.sampled_from([1.0, 10.0, 25.0, 100.0, 400.0]))
    value_st = st.floats(min_value=-10, max_value=500,
                         allow_nan=False)
    iface_st = st.builds(
        InterfaceModel, key=key_st,
        p_port_w=st.builds(fitted, value_st),
        p_trx_in_w=st.builds(fitted, value_st),
        p_trx_up_w=st.builds(fitted, value_st),
        e_bit_pj=st.builds(fitted, value_st),
        e_pkt_nj=st.builds(fitted, value_st),
        p_offset_w=st.builds(fitted, value_st))

    def build(base, ifaces):
        model = PowerModel(router_model="prop", p_base_w=fitted(base))
        for iface in ifaces:
            model.add_interface_model(iface)
        return model

    return st.builds(build, st.floats(min_value=0, max_value=2000),
                     st.lists(iface_st, min_size=0, max_size=5))


class TestModelInvariants:
    @given(_model_strategy())
    @settings(max_examples=40)
    def test_serialisation_round_trip_exact(self, model):
        restored = PowerModel.from_dict(model.to_dict())
        assert restored.p_base_w.value == model.p_base_w.value
        assert set(restored.interfaces) == set(model.interfaces)
        for key, iface in model.interfaces.items():
            other = restored.interfaces[key]
            assert other.p_port_w.value == iface.p_port_w.value
            assert other.e_pkt_nj.value == iface.e_pkt_nj.value

    @given(_model_strategy(),
           st.floats(min_value=0, max_value=1e11),
           st.floats(min_value=0, max_value=1e8))
    @settings(max_examples=40)
    def test_prediction_decomposes(self, model, bps, pps):
        from repro.core.model import InterfaceState
        if not model.interfaces:
            return
        key = next(iter(model.interfaces))
        states = [InterfaceState(key=key, bps=bps, pps=pps)]
        total = model.predict_power_w(states)
        assert total == pytest.approx(
            model.static_power_w(states) + model.dynamic_power_w(states),
            rel=1e-9, abs=1e-6)


# ---------------------------------------------------------------------------
# Packet arithmetic
# ---------------------------------------------------------------------------


class TestPacketInvariants:
    @given(st.floats(min_value=1e3, max_value=4e11),
           st.floats(min_value=64, max_value=9000),
           st.floats(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_packet_rate_monotone_in_rate(self, rate, size, extra):
        assert units.packet_rate(rate + extra * 1e6, size) \
            >= units.packet_rate(rate, size)

    @given(st.floats(min_value=1e6, max_value=4e11),
           st.floats(min_value=64, max_value=4000),
           st.floats(min_value=64, max_value=4000))
    @settings(max_examples=60)
    def test_bigger_packets_fewer_of_them(self, rate, a, b):
        small, large = min(a, b), max(a, b)
        # A sub-ulp gap gives identical wire sizes after rounding.
        assume(large - small > 1e-6)
        assert units.packet_rate(rate, large) < units.packet_rate(rate,
                                                                  small)
