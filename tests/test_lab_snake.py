"""Cabling layouts: pair cabling and the RFC 8239 snake."""

import pytest

from repro.lab.snake import (
    apply_snake_traffic,
    cable_pairs,
    cable_snake,
    clear_traffic,
    teardown,
)
from repro.lab.traffic_gen import Flow


@pytest.fixture
def plugged_router(quiet_router):
    for i in range(8):
        quiet_router.port(i).plug("QSFP28-100G-DAC")
    return quiet_router


class TestPairCabling:
    def test_pairs_link_up_together(self, plugged_router):
        ports = plugged_router.ports[:8]
        cable_pairs(ports)
        for port in ports:
            port.set_admin(True)
        assert all(p.link_up for p in ports)
        assert ports[0].peer is ports[1]
        assert ports[6].peer is ports[7]

    def test_odd_count_rejected(self, plugged_router):
        with pytest.raises(ValueError, match="even"):
            cable_pairs(plugged_router.ports[:3])


class TestSnakeCabling:
    def test_chain_topology(self, plugged_router):
        ports = plugged_router.ports[:6]
        layout = cable_snake(ports)
        assert layout.n_pairs == 3
        # First and last port face the orchestrator.
        assert ports[0].peer is layout.host_tx
        assert ports[5].peer is layout.host_rx
        # Interior ports chain pairwise.
        assert ports[1].peer is ports[2]
        assert ports[3].peer is ports[4]

    def test_links_come_up(self, plugged_router):
        ports = plugged_router.ports[:6]
        cable_snake(ports)
        for port in ports:
            port.set_admin(True)
        assert all(p.link_up for p in ports)

    def test_odd_count_rejected(self, plugged_router):
        with pytest.raises(ValueError, match="even"):
            cable_snake(plugged_router.ports[:5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cable_snake([])


class TestSnakeTraffic:
    def test_every_interface_carries_the_flow_once(self, plugged_router):
        ports = plugged_router.ports[:6]
        layout = cable_snake(ports)
        for port in ports:
            port.set_admin(True)
        flow = Flow(bit_rate_bps=10e9, packet_bytes=1500, tool="ib_send_bw")
        apply_snake_traffic(layout, flow)
        for port in ports:
            assert port.traffic.total_bps == pytest.approx(10e9)

    def test_total_dynamic_power_scales_with_port_count(self, plugged_router):
        ports = plugged_router.ports[:6]
        layout = cable_snake(ports)
        for port in ports:
            port.set_admin(True)
        flow = Flow(bit_rate_bps=10e9, packet_bytes=1500, tool="ib_send_bw")
        apply_snake_traffic(layout, flow)
        single = ports[0].dynamic_power_w()
        total = sum(p.dynamic_power_w() for p in ports)
        assert total == pytest.approx(6 * single)

    def test_clear_traffic(self, plugged_router):
        ports = plugged_router.ports[:6]
        layout = cable_snake(ports)
        for port in ports:
            port.set_admin(True)
        apply_snake_traffic(layout, Flow(5e9, 512, "ib_send_bw"))
        clear_traffic(ports)
        assert all(p.traffic.total_bps == 0 for p in ports)


class TestTeardown:
    def test_returns_to_pristine(self, plugged_router):
        ports = plugged_router.ports[:6]
        cable_snake(ports)
        for port in ports:
            port.set_admin(True)
            port.set_speed(50)
        teardown(plugged_router.ports)
        for port in plugged_router.ports:
            assert not port.plugged
            assert not port.admin_up
            assert port.cable is None
            assert port.configured_speed_gbps is None
        assert plugged_router.wall_referred_power_w() == pytest.approx(320.0)
