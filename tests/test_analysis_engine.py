"""The ``repro.analysis`` rule engine: registry, scoping, suppression."""

import textwrap

import pytest

from repro.analysis import (CheckConfig, Finding, Severity,
                            all_project_rules, all_rules, check_paths,
                            check_source)


def src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def rule_ids(result) -> list:
    return [finding.rule_id for finding in result.findings]


class TestRegistry:
    def test_rules_are_sorted_by_id(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_every_family_is_represented(self):
        families = {rule.rule_id.rsplit("-", 1)[0] for rule in all_rules()}
        assert families == {"NP-DET", "NP-UNIT", "NP-API", "NP-SCHEMA",
                            "NP-OBS"}
        project_families = {rule.rule_id.rsplit("-", 1)[0]
                            for rule in all_project_rules()}
        assert project_families == {"NP-FLOW", "NP-ASYNC", "NP-MUT"}

    def test_severities_are_valid(self):
        for rule in all_rules():
            assert isinstance(rule.severity, Severity)
            assert rule.summary
        for rule in all_project_rules():
            assert isinstance(rule.severity, Severity)
            assert rule.summary


class TestSelect:
    SOURCE = src('''
        """Mod."""
        import time


        def f() -> None:
            """F."""
            time.time()
        ''')

    def test_select_family(self):
        config = CheckConfig(select=("NP-DET",))
        result = check_source(self.SOURCE, "core/fixture.py", config)
        assert rule_ids(result) == ["NP-DET-001"]

    def test_select_exact_rule(self):
        config = CheckConfig(select=("NP-DET-001",))
        result = check_source(self.SOURCE, "core/fixture.py", config)
        assert rule_ids(result) == ["NP-DET-001"]

    def test_select_other_family_excludes(self):
        config = CheckConfig(select=("NP-SCHEMA",))
        result = check_source(self.SOURCE, "core/fixture.py", config)
        assert result.findings == []


class TestSuppression:
    def test_trailing_comment_suppresses_own_line(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.time()  # netpower: ignore[NP-DET-001] -- test fixture
            ''')
        result = check_source(source, "core/fixture.py")
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["NP-DET-001"]

    def test_comment_block_suppresses_next_code_line(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                # netpower: ignore[NP-DET-001] -- a justification that
                # spans multiple comment lines above the statement
                time.time()
            ''')
        result = check_source(source, "core/fixture.py")
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["NP-DET-001"]

    def test_file_level_suppression(self):
        source = src('''
            """Mod."""
            # netpower: ignore-file[NP-DET] -- fixture exercises clocks
            import time


            def f() -> None:
                """F."""
                time.time()
                time.monotonic()
            ''')
        result = check_source(source, "core/fixture.py")
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_family_prefix_and_star_cover(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.time()  # netpower: ignore[NP-DET] -- fixture
                time.monotonic()  # netpower: ignore[*] -- fixture
            ''')
        result = check_source(source, "core/fixture.py")
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_unmatched_suppression_is_reported(self):
        source = src('''
            """Mod."""


            def f() -> None:
                """F."""
                return None  # netpower: ignore[NP-DET-001] -- stale
            ''')
        result = check_source(source, "core/fixture.py")
        assert result.findings == []
        assert len(result.unused_suppressions) == 1
        path, line, rules = result.unused_suppressions[0]
        assert path == "core/fixture.py"
        assert rules == ("NP-DET-001",)

    def test_suppression_for_other_rule_does_not_cover(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.time()  # netpower: ignore[NP-UNIT-001] -- wrong rule
            ''')
        result = check_source(source, "core/fixture.py")
        assert rule_ids(result) == ["NP-DET-001"]
        assert len(result.unused_suppressions) == 1


class TestEngine:
    def test_syntax_error_becomes_np_parse(self):
        result = check_source("def broken(:\n", "core/bad.py")
        assert rule_ids(result) == ["NP-PARSE"]
        assert not result.ok

    def test_findings_sorted_and_stable(self):
        source = src('''
            import time


            def f():
                time.time()
            ''')
        result = check_source(source, "core/fixture.py")
        keys = [f.sort_key for f in result.findings]
        assert keys == sorted(keys)
        again = check_source(source, "core/fixture.py")
        assert result.findings == again.findings

    def test_finding_render_format(self):
        finding = Finding(rule_id="NP-DET-001", severity=Severity.ERROR,
                          path="core/model.py", line=3, col=4,
                          message="boom")
        assert finding.render() == \
            "core/model.py:3:4: NP-DET-001 [error] boom"

    def test_det_scope_only_in_det_packages(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.time()
            ''')
        flagged = check_source(source, "core/fixture.py")
        exempt = check_source(source, "figures.py")
        assert rule_ids(flagged) == ["NP-DET-001"]
        assert "NP-DET-001" not in rule_ids(exempt)

    def test_wallclock_allowlist(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.perf_counter()
            ''')
        allowed = check_source(source, "sweep/runner.py")
        assert "NP-DET-001" not in rule_ids(allowed)
        denied = check_source(source, "sweep/matrix.py")
        assert "NP-DET-001" in rule_ids(denied)


class TestCheckPaths:
    def test_directory_discovery_and_relative_paths(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "fixture.py").write_text(
            '"""Mod."""\nimport time\n\n\ndef f() -> None:\n'
            '    """F."""\n    time.time()\n')
        result = check_paths([tmp_path])
        assert result.paths == ["core/fixture.py"]
        assert rule_ids(result) == ["NP-DET-001"]
        assert result.findings[0].path == "core/fixture.py"

    def test_missing_reason_still_parses_but_is_flagged(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.time()  # netpower: ignore[NP-DET-001]
            ''')
        result = check_source(source, "core/fixture.py")
        assert result.findings == []
        assert result.suppressed
        assert len(result.unjustified_suppressions) == 1
        path, _line, rules = result.unjustified_suppressions[0]
        assert path == "core/fixture.py"
        assert rules == ("NP-DET-001",)
        assert not result.clean

    def test_whitespace_reason_is_flagged(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.time()  # netpower: ignore[NP-DET-001] --
            ''')
        result = check_source(source, "core/fixture.py")
        assert result.findings == []
        assert len(result.unjustified_suppressions) == 1

    def test_real_reason_is_not_flagged(self):
        source = src('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.time()  # netpower: ignore[NP-DET-001] -- fixture
            ''')
        result = check_source(source, "core/fixture.py")
        assert result.unjustified_suppressions == []
        assert result.clean


class TestResultMerge:
    def test_ok_property(self):
        clean = check_source('"""Mod."""\n', "core/fixture.py")
        assert clean.ok
        dirty = check_source("x = 1\n", "core/fixture.py")
        assert not dirty.ok  # module docstring missing

    def test_merge_accumulates(self):
        a = check_source('"""Mod."""\n', "core/a.py")
        b = check_source('"""Mod."""\n', "core/b.py")
        a.merge(b)
        assert sorted(a.paths) == ["core/a.py", "core/b.py"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
