"""The §4.3 modular-router extension: chassis, linecards, P_linecard."""

import numpy as np
import pytest

from repro.core.model import PowerModel
from repro.hardware import connect
from repro.hardware.modular import (
    CHASSIS_CATALOG,
    LINECARD_CATALOG,
    ModularRouter,
    chassis_spec,
    linecard_spec,
)
from repro.lab.modular import ModularOrchestrator


@pytest.fixture
def chassis(rng):
    return ModularRouter(chassis_spec("MOD-CHASSIS-6"), rng=rng,
                         noise_std_w=0.0)


class TestChassisBasics:
    def test_empty_chassis_power(self, chassis):
        assert chassis.wall_referred_power_w() == pytest.approx(540.0)
        assert chassis.ports == []
        assert chassis.n_slots == 6

    def test_unknown_lookups(self):
        with pytest.raises(KeyError, match="known cards"):
            linecard_spec("LC-NOPE")
        with pytest.raises(KeyError, match="known chassis"):
            chassis_spec("CHASSIS-NOPE")

    def test_catalog_sane(self):
        for card in LINECARD_CATALOG.values():
            assert card.p_card_w > 0
            assert card.total_ports > 0
        for spec in CHASSIS_CATALOG.values():
            assert spec.n_slots > 0


class TestLinecardLifecycle:
    def test_insert_adds_power_and_ports(self, chassis):
        base = chassis.wall_referred_power_w()
        ports = chassis.insert_linecard(0, "LC-8X100GE")
        assert len(ports) == 8
        assert chassis.wall_referred_power_w() - base == pytest.approx(310.0)
        assert chassis.linecards() == {0: "LC-8X100GE"}

    def test_mixed_cards(self, chassis):
        chassis.insert_linecard(0, "LC-24X10GE")
        chassis.insert_linecard(3, "LC-4X400GE")
        assert chassis.wall_referred_power_w() == pytest.approx(
            540.0 + 180.0 + 405.0)
        assert len(chassis.ports) == 28

    def test_remove_restores(self, chassis):
        chassis.insert_linecard(2, "LC-8X100GE")
        removed = chassis.remove_linecard(2)
        assert removed.name == "LC-8X100GE"
        assert chassis.wall_referred_power_w() == pytest.approx(540.0)
        assert chassis.ports == []
        assert chassis.remove_linecard(2) is None  # idempotent

    def test_slot_conflicts(self, chassis):
        chassis.insert_linecard(0, "LC-8X100GE")
        with pytest.raises(ValueError, match="already holds"):
            chassis.insert_linecard(0, "LC-24X10GE")
        with pytest.raises(IndexError, match="slots 0..5"):
            chassis.insert_linecard(6, "LC-24X10GE")

    def test_port_names_by_slot(self, chassis):
        ports = chassis.insert_linecard(1, "LC-4X400GE")
        assert [p.name for p in ports] == [
            "Slot1/0", "Slot1/1", "Slot1/2", "Slot1/3"]


class TestCardInterfaces:
    def test_card_class_truth_applies(self, chassis):
        ports = chassis.insert_linecard(0, "LC-8X100GE")
        base = chassis.wall_referred_power_w()
        ports[0].plug("QSFP28-100G-LR4")
        # The card's class says P_trx,in = 2.79 for LR4.
        assert chassis.wall_referred_power_w() - base == pytest.approx(2.79)

    def test_card_traffic_power(self, chassis):
        ports = chassis.insert_linecard(0, "LC-8X100GE")
        for p in ports[:2]:
            p.plug("QSFP28-100G-DAC")
            p.set_admin(True)
        connect(ports[0], ports[1])
        before = chassis.wall_referred_power_w()
        ports[0].offer_traffic(rx_bps=0, tx_bps=50e9, packet_bytes=1500)
        delta = chassis.wall_referred_power_w() - before
        # e_bit 9 pJ x 50 Gbps dominates.
        assert delta == pytest.approx(0.15 + 9e-12 * 50e9
                                      + 20e-9 * 50e9 / (8 * 1538),
                                      rel=0.01)

    def test_unknown_class_falls_back_to_defaults(self, chassis):
        ports = chassis.insert_linecard(0, "LC-24X10GE")
        ports[0].plug("SFP+-10G-SR")  # no SR class on the card
        truth = ports[0].class_truth()
        assert truth.p_port_w == pytest.approx(0.55)  # Table 5 default


class TestLinecardDerivation:
    def test_p_linecard_round_trip(self, rng):
        dut = ModularRouter(chassis_spec("MOD-CHASSIS-6"), rng=rng,
                            noise_std_w=0.2)
        orchestrator = ModularOrchestrator(dut, rng=rng)
        report = orchestrator.derive_linecard(
            "LC-8X100GE", counts=(1, 2, 3, 4, 5), duration_s=20,
            settle_s=2)
        assert report.p_card.value == pytest.approx(310.0, rel=0.05)
        assert report.fit.r_squared > 0.99
        assert report.chassis_power_w.value == pytest.approx(540.0,
                                                             rel=0.05)

    def test_full_modular_model(self, rng):
        dut = ModularRouter(chassis_spec("MOD-CHASSIS-6"), rng=rng,
                            noise_std_w=0.2)
        orchestrator = ModularOrchestrator(dut, rng=rng)
        model, reports = orchestrator.derive_model(
            ["LC-24X10GE", "LC-4X400GE"], counts=(1, 2, 4),
            duration_s=15, settle_s=2)
        assert model.linecards["LC-24X10GE"].value == pytest.approx(
            180.0, rel=0.08)
        assert model.linecards["LC-4X400GE"].value == pytest.approx(
            405.0, rel=0.08)
        # Prediction for a populated chassis.
        predicted = model.predict_modular_power_w(
            ["LC-24X10GE", "LC-4X400GE", "LC-4X400GE"], [])
        assert predicted == pytest.approx(540 + 180 + 2 * 405, rel=0.05)

    def test_unknown_card_in_prediction(self):
        model = PowerModel.__new__(PowerModel)
        model.__init__(router_model="x",
                       p_base_w=__import__(
                           "repro.core.model",
                           fromlist=["fitted"]).fitted(100.0))
        with pytest.raises(KeyError, match="known cards"):
            model.linecard_power_w(["LC-MYSTERY"])

    def test_count_validation(self, rng):
        dut = ModularRouter(chassis_spec("MOD-CHASSIS-6"), rng=rng)
        orchestrator = ModularOrchestrator(dut, rng=rng)
        with pytest.raises(ValueError, match="two distinct"):
            orchestrator.derive_linecard("LC-8X100GE", counts=(2,))
        with pytest.raises(ValueError, match="slots"):
            orchestrator.derive_linecard("LC-8X100GE", counts=(1, 9))


class TestModularSerialisation:
    def test_linecards_survive_round_trip(self, rng):
        from repro.core.model import fitted
        model = PowerModel(router_model="MOD-CHASSIS-6",
                           p_base_w=fitted(540.0, 1.0))
        model.add_linecard_model("LC-8X100GE", fitted(310.0, 2.0))
        restored = PowerModel.from_dict(model.to_dict())
        assert restored.linecards["LC-8X100GE"].value == 310.0
        assert restored.linecards["LC-8X100GE"].stderr == 2.0
