"""Hypnos link sleeping and the §8 savings accounting."""

import networkx as nx
import numpy as np
import pytest

from repro import units
from repro.network import FleetTrafficModel
from repro.sleep import (
    Hypnos,
    HypnosConfig,
    SleepPlan,
    WindowPlan,
    external_power_share,
    naive_saving_w,
    plan_savings,
    port_saving_range_w,
)


@pytest.fixture
def traffic(small_fleet):
    return FleetTrafficModel(small_fleet, rng=np.random.default_rng(13),
                             n_demands=150)


@pytest.fixture
def hypnos(small_fleet, traffic):
    return Hypnos(small_fleet, traffic.matrix)


class TestPlanWindow:
    def test_sleeps_some_links(self, hypnos, small_fleet):
        asleep = hypnos.plan_window(1.0)
        assert 0 < len(asleep) < len(small_fleet.internal_links())

    def test_network_stays_connected(self, hypnos, small_fleet):
        asleep = hypnos.plan_window(1.0)
        graph = nx.Graph(small_fleet.internal_graph(exclude=asleep))
        assert nx.is_connected(graph)

    def test_redundancy_preserved(self, hypnos, small_fleet):
        asleep = hypnos.plan_window(1.0)
        graph = small_fleet.internal_graph(exclude=asleep)
        collapsed = nx.Graph()
        collapsed.add_nodes_from(graph.nodes)
        multi = set()
        for a, b in graph.edges():
            if collapsed.has_edge(a, b):
                multi.add(frozenset((a, b)))
            collapsed.add_edge(a, b)
        for a, b in nx.bridges(collapsed):
            assert frozenset((a, b)) in multi, \
                "sleeping created a single point of failure"

    def test_no_redundancy_sleeps_more(self, small_fleet, traffic):
        strict = Hypnos(small_fleet, traffic.matrix,
                        HypnosConfig(require_redundancy=True))
        loose = Hypnos(small_fleet, traffic.matrix,
                       HypnosConfig(require_redundancy=False))
        assert len(loose.plan_window(1.0)) >= len(strict.plan_window(1.0))

    def test_utilisation_cap_respected(self, small_fleet, traffic):
        hypnos = Hypnos(small_fleet, traffic.matrix,
                        HypnosConfig(max_utilisation=0.5))
        asleep = hypnos.plan_window(2.0)
        survivor = traffic.matrix.reroute_without(asleep)
        utils = survivor.utilisations()
        live = {lid: u for lid, u in utils.items() if lid not in asleep}
        assert max(live.values()) <= 0.5 + 1e-9

    def test_tight_cap_sleeps_less(self, small_fleet, traffic):
        loose = Hypnos(small_fleet, traffic.matrix,
                       HypnosConfig(max_utilisation=0.9))
        tight = Hypnos(small_fleet, traffic.matrix,
                       HypnosConfig(max_utilisation=0.002))
        assert len(tight.plan_window(1.0)) <= len(loose.plan_window(1.0))

    def test_protected_links_never_sleep(self, small_fleet, traffic):
        some = frozenset(l.link_id
                         for l in small_fleet.internal_links()[:30])
        hypnos = Hypnos(small_fleet, traffic.matrix,
                        HypnosConfig(protected_links=some))
        assert not (hypnos.plan_window(1.0) & some)

    def test_max_sleeping_cap(self, small_fleet, traffic):
        hypnos = Hypnos(small_fleet, traffic.matrix,
                        HypnosConfig(max_sleeping=3))
        assert len(hypnos.plan_window(1.0)) <= 3

    def test_negative_multiplier_rejected(self, hypnos):
        with pytest.raises(ValueError):
            hypnos.plan_window(-1.0)


class TestSchedule:
    def test_weekly_plan(self, hypnos):
        plan = hypnos.plan(0, units.days(2),
                           window_s=units.SECONDS_PER_HOUR)
        assert len(plan.windows) == 48
        assert plan.total_duration_s == pytest.approx(units.days(2))
        assert plan.ever_sleeping()

    def test_sleep_fraction_bounds(self, hypnos):
        plan = hypnos.plan(0, units.days(1))
        for link_id in plan.ever_sleeping():
            assert 0 < plan.sleep_fraction(link_id) <= 1.0

    def test_empty_plan_fraction(self):
        assert SleepPlan().sleep_fraction(1) == 0.0


class TestSavings:
    def test_range_ordering(self, small_fleet):
        link = small_fleet.internal_links()[0]
        lower, upper = port_saving_range_w(small_fleet, link.link_id)
        assert 0 < lower < upper

    def test_naive_estimate_is_the_upper_bound(self, small_fleet):
        # Prior work assumed P_port + P_trx per side -- our upper bound.
        link = small_fleet.internal_links()[0]
        _, upper = port_saving_range_w(small_fleet, link.link_id)
        assert naive_saving_w(small_fleet, link.link_id) == upper

    def test_plan_savings_in_papers_regime(self, small_fleet, hypnos):
        plan = hypnos.plan(0, units.days(1))
        reference = small_fleet.total_wall_power_w()
        estimate = plan_savings(small_fleet, plan, reference)
        # §8: savings are fractions of a percent to ~2 %.
        assert 0.0 < estimate.lower_fraction < 0.05
        assert estimate.lower_fraction < estimate.upper_fraction < 0.10

    def test_reference_validation(self, small_fleet):
        with pytest.raises(ValueError):
            plan_savings(small_fleet, SleepPlan(), reference_power_w=0)


class TestExternalShare:
    def test_externals_hold_large_transceiver_share(self, fleet):
        share = external_power_share(fleet)
        # §8: externals are out of reach and carry about half (or more)
        # of the transceiver power.
        assert share["external_share"] > 0.4
        assert share["internal_trx_w"] > 0
        assert share["external_trx_w"] > 0
