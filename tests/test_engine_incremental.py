"""Incremental event-boundary refresh on synthetic fleets.

The columnar engine patches router columns in place at event boundaries
(``FleetState.patch_routers``) instead of rebuilding the whole
configuration, and promises the optimization is *unobservable*: with
``INCREMENTAL_REFRESH`` forced off, the same seeded run must produce
bitwise-identical traces.  These tests drive randomized seeded event
schedules over a generated multi-tier fleet (:mod:`repro.network.synth`)
and compare three runs per schedule -- object, vector-incremental, and
vector-full-rebuild -- plus the generator's own determinism contract and
the observability on/off byte-identity promise at the same scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.transceiver import compatible, transceiver
from repro.network import (
    AddExternalInterface,
    DeployAutopower,
    FleetInventory,
    FleetTrafficModel,
    HeatWave,
    NetworkSimulation,
    OsUpdate,
    PowerCycle,
    SetAdminState,
    UnplugModule,
    generate_synth_network,
    supports_vectorized,
    synth_config,
)
from repro.network import engine as engine_mod
from repro.obs import metrics

PRESET = "synth-200"
STEP_S = 300.0
N_STEPS = 40


def _build(seed: int = 11):
    network = generate_synth_network(synth_config(PRESET),
                                     rng=np.random.default_rng(seed))
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(seed + 1),
                                n_demands=60)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(seed + 2))
    return network, sim


def _random_events(schedule_seed: int, hosts):
    """A seeded random mix of patchable events (no topology reshapes)."""
    rng = np.random.default_rng(schedule_seed)
    events = []
    for _ in range(int(rng.integers(5, 10))):
        at_s = float(rng.integers(1, N_STEPS)) * STEP_S
        host = hosts[int(rng.integers(len(hosts)))]
        kind = int(rng.integers(6))
        if kind == 0:
            events.append(SetAdminState(
                at_s=at_s, hostname=host,
                port_index=int(rng.integers(4)),
                up=bool(rng.integers(2))))
        elif kind == 1:
            events.append(UnplugModule(
                at_s=at_s, hostname=host,
                port_index=int(rng.integers(4))))
        elif kind == 2:
            events.append(PowerCycle(at_s=at_s, hostname=host))
        elif kind == 3:
            events.append(OsUpdate(at_s=at_s, hostname=host))
        elif kind == 4:
            events.append(HeatWave(
                at_s=at_s, ambient_c=25.0 + float(rng.integers(6))))
        else:
            events.append(DeployAutopower(at_s=at_s, hostname=host))
    events.sort(key=lambda e: e.at_s)
    return events


def _run(engine: str, events, incremental: bool = True, seed: int = 11):
    saved = engine_mod.INCREMENTAL_REFRESH
    engine_mod.INCREMENTAL_REFRESH = incremental
    try:
        network, sim = _build(seed)
        result = sim.run(duration_s=N_STEPS * STEP_S, step_s=STEP_S,
                         events=list(events), engine=engine)
    finally:
        engine_mod.INCREMENTAL_REFRESH = saved
    return network, result


def _assert_bitwise_identical(r1, r2):
    """Incremental vs full rebuild: every float and counter identical."""
    np.testing.assert_array_equal(r1.total_power.values,
                                  r2.total_power.values)
    np.testing.assert_array_equal(r1.total_traffic_bps.values,
                                  r2.total_traffic_bps.values)
    assert set(r1.snmp) == set(r2.snmp)
    for host in r1.snmp:
        np.testing.assert_array_equal(r1.snmp[host].power.values,
                                      r2.snmp[host].power.values,
                                      err_msg=host)
        for name, tr1 in r1.snmp[host].interfaces.items():
            tr2 = r2.snmp[host].interfaces[name]
            np.testing.assert_array_equal(tr1.rx_octets.counts,
                                          tr2.rx_octets.counts,
                                          err_msg=f"{host}/{name}")
            np.testing.assert_array_equal(tr1.tx_packets.counts,
                                          tr2.tx_packets.counts,
                                          err_msg=f"{host}/{name}")


def _assert_matches_object(net_obj, r_obj, net_vec, r_vec):
    """Vector vs object: power within 1e-9, counters exactly equal."""
    np.testing.assert_allclose(r_obj.total_power.values,
                               r_vec.total_power.values, rtol=1e-9)
    np.testing.assert_allclose(r_obj.total_traffic_bps.values,
                               r_vec.total_traffic_bps.values, rtol=1e-9)
    for host in net_obj.routers:
        c1 = net_obj.routers[host].interface_counters()
        c2 = net_vec.routers[host].interface_counters()
        assert set(c1) == set(c2)
        for name in c1:
            assert c1[name].rx_octets == c2[name].rx_octets, (host, name)
            assert c1[name].tx_packets == c2[name].tx_packets, (host, name)


class TestSynthFleetEquivalence:
    def test_synth_fleet_is_vectorizable(self):
        network, _ = _build()
        assert supports_vectorized(network)

    @pytest.mark.parametrize("schedule_seed", [101, 202, 303])
    def test_random_schedule_incremental_full_and_object_agree(
            self, schedule_seed):
        hosts = sorted(_build()[0].routers)
        events = _random_events(schedule_seed, hosts)
        net_obj, r_obj = _run("object", events)
        net_inc, r_inc = _run("vector", events, incremental=True)
        net_full, r_full = _run("vector", events, incremental=False)
        _assert_bitwise_identical(r_inc, r_full)
        _assert_matches_object(net_obj, r_obj, net_inc, r_inc)

    def test_incremental_path_actually_ran(self):
        hosts = sorted(_build()[0].routers)
        events = _random_events(101, hosts)
        with metrics.use_registry(metrics.MetricsRegistry()) as reg:
            _run("vector", events, incremental=True)
            partial = reg.get(
                "netpower_sim_engine_partial_refresh_total")
            patched = reg.get(
                "netpower_sim_engine_router_columns_patched_total")
            assert partial is not None and partial.default().value > 0
            assert patched is not None and patched.default().value > 0

    def test_topology_reshape_forces_full_rebuild(self):
        network, _ = _build()
        target = None
        for host in sorted(network.routers):
            router = network.routers[host]
            for idx, port in enumerate(router.ports):
                if not port.plugged and compatible(
                        port.port_type, transceiver("SFP-1G-LX").model):
                    target = (host, idx)
                    break
            if target:
                break
        assert target, "synthetic fleet should keep spare SFP ports"
        events = [AddExternalInterface(at_s=5 * STEP_S, hostname=target[0],
                                       port_index=target[1],
                                       trx_name="SFP-1G-LX")]
        with metrics.use_registry(metrics.MetricsRegistry()) as reg:
            _, r_inc = _run("vector", events, incremental=True)
            partial = reg.get("netpower_sim_engine_partial_refresh_total")
            refresh = reg.get("netpower_sim_engine_refresh_total")
            # The reshape must fall back to a full rebuild: at least two
            # refreshes (construction + the boundary), zero patches.
            assert partial is None or partial.default().value == 0
            assert refresh is not None and refresh.default().value >= 2
        _, r_full = _run("vector", events, incremental=False)
        _assert_bitwise_identical(r_inc, r_full)


class TestSynthDeterminism:
    def test_same_seed_builds_byte_identical_fleet(self):
        net1 = generate_synth_network(synth_config(PRESET),
                                      rng=np.random.default_rng(11))
        net2 = generate_synth_network(synth_config(PRESET),
                                      rng=np.random.default_rng(11))
        json1 = FleetInventory.capture(net1).to_json()
        json2 = FleetInventory.capture(net2).to_json()
        assert json1 == json2

    def test_different_seed_differs(self):
        net1 = generate_synth_network(synth_config(PRESET),
                                      rng=np.random.default_rng(11))
        net2 = generate_synth_network(synth_config(PRESET),
                                      rng=np.random.default_rng(12))
        assert (FleetInventory.capture(net1).to_json()
                != FleetInventory.capture(net2).to_json())

    def test_same_seed_runs_byte_identical(self):
        _, r1 = _run("vector", _random_events(202, sorted(_build()[0].routers)))
        _, r2 = _run("vector", _random_events(202, sorted(_build()[0].routers)))
        _assert_bitwise_identical(r1, r2)


class TestObservabilityByteIdentity:
    """Metrics on vs off must not change a single simulated byte."""

    def test_live_registry_run_is_bitwise_identical(self):
        hosts = sorted(_build()[0].routers)
        events = _random_events(303, hosts)
        _, bare = _run("vector", events)
        with metrics.use_registry(metrics.MetricsRegistry()):
            _, observed = _run("vector", events)
        _assert_bitwise_identical(bare, observed)
