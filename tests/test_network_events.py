"""Direct unit tests of the operational event types."""

import numpy as np
import pytest

from repro import units
from repro.network import (
    AddExternalInterface,
    Commission,
    Decommission,
    DeployAutopower,
    FleetEvent,
    FleetTrafficModel,
    NetworkSimulation,
    OsUpdate,
    PowerCycle,
    SetAdminState,
    UnplugModule,
)


class _FakeSim:
    """Just enough of a simulation for apply() to act on."""

    def __init__(self, network):
        self.network = network
        self.deployed = []
        self.topology_changes = []

    def deploy_autopower(self, hostname):
        self.deployed.append(hostname)

    def on_topology_change(self, new_external=None):
        self.topology_changes.append(new_external)


@pytest.fixture
def sim(small_fleet):
    return _FakeSim(small_fleet)


def active_port(network):
    for hostname in sorted(network.routers):
        for port in network.routers[hostname].ports:
            if port.plugged and port.link_up:
                return hostname, port.index
    raise AssertionError("no active port")


class TestEventSemantics:
    def test_base_class_is_abstract(self, sim):
        with pytest.raises(NotImplementedError):
            FleetEvent(at_s=0.0).apply(sim)

    def test_unplug_module(self, sim, small_fleet):
        hostname, index = active_port(small_fleet)
        port = small_fleet.routers[hostname].port(index)
        UnplugModule(at_s=0, hostname=hostname, port_index=index).apply(sim)
        assert not port.plugged
        assert not port.admin_up
        assert port.cable is None

    def test_set_admin_state_preserves_module(self, sim, small_fleet):
        hostname, index = active_port(small_fleet)
        port = small_fleet.routers[hostname].port(index)
        module = port.transceiver
        SetAdminState(at_s=0, hostname=hostname, port_index=index,
                      up=False).apply(sim)
        assert port.transceiver is module  # §7: down != unplugged
        SetAdminState(at_s=0, hostname=hostname, port_index=index,
                      up=True).apply(sim)
        assert port.link_up

    def test_add_external_interface_registers_link(self, sim, small_fleet):
        hostname = sorted(small_fleet.routers)[0]
        router = small_fleet.routers[hostname]
        free = next(p for p in router.ports if not p.plugged)
        n_before = len(small_fleet.links)
        trx = ("QSFP-DD-400G-FR4"
               if free.port_type.value == "QSFP-DD" else "SFP+-10G-LR"
               if free.port_type.value in ("SFP+", "SFP28") else
               "QSFP28-100G-LR4" if free.port_type.value == "QSFP28"
               else "SFP-1G-LX")
        AddExternalInterface(at_s=0, hostname=hostname,
                             port_index=free.index,
                             trx_name=trx).apply(sim)
        assert len(small_fleet.links) == n_before + 1
        new_link = small_fleet.links[-1]
        assert not new_link.is_internal
        assert sim.topology_changes == [new_link]
        # Link ids stay unique.
        ids = [l.link_id for l in small_fleet.links]
        assert len(ids) == len(set(ids))

    def test_os_update_accumulates(self, sim, small_fleet):
        hostname = sorted(small_fleet.routers)[0]
        router = small_fleet.routers[hostname]
        OsUpdate(at_s=0, hostname=hostname, fan_bump_w=45).apply(sim)
        OsUpdate(at_s=0, hostname=hostname, fan_bump_w=10).apply(sim)
        assert router.fan_bump_w == 55

    def test_decommission_and_commission(self, sim, small_fleet):
        hostname = sorted(small_fleet.routers)[0]
        router = small_fleet.routers[hostname]
        Decommission(at_s=0, hostname=hostname).apply(sim)
        assert not router.powered
        Commission(at_s=0, hostname=hostname).apply(sim)
        assert router.powered

    def test_power_cycle(self, sim, small_fleet):
        hostname = sorted(small_fleet.routers)[0]
        boots = small_fleet.routers[hostname]._boots
        PowerCycle(at_s=0, hostname=hostname).apply(sim)
        assert small_fleet.routers[hostname]._boots == boots + 1

    def test_deploy_autopower_delegates(self, sim, small_fleet):
        hostname = sorted(small_fleet.routers)[0]
        DeployAutopower(at_s=0, hostname=hostname).apply(sim)
        assert sim.deployed == [hostname]

    def test_unknown_hostname_fails_loudly(self, sim):
        with pytest.raises(KeyError, match="unknown router"):
            OsUpdate(at_s=0, hostname="ghost").apply(sim)


class TestEventOrdering:
    def test_events_fire_in_time_order(self, small_fleet, rng):
        traffic = FleetTrafficModel(small_fleet, rng=rng, n_demands=40)
        sim = NetworkSimulation(small_fleet, traffic,
                                rng=np.random.default_rng(4))
        hostname = sorted(small_fleet.routers)[0]
        router = small_fleet.routers[hostname]
        # Deliberately out of order in the list.
        events = [
            OsUpdate(at_s=units.hours(2), hostname=hostname,
                     fan_bump_w=20),
            OsUpdate(at_s=units.hours(1), hostname=hostname,
                     fan_bump_w=10),
        ]
        sim.run(duration_s=units.hours(1.5), step_s=900, events=events)
        # Only the earlier event has fired so far.
        assert router.fan_bump_w == 10

    def test_same_timestamp_events_all_fire(self, small_fleet, rng):
        traffic = FleetTrafficModel(small_fleet, rng=rng, n_demands=40)
        sim = NetworkSimulation(small_fleet, traffic,
                                rng=np.random.default_rng(4))
        hostname = sorted(small_fleet.routers)[0]
        router = small_fleet.routers[hostname]
        events = [OsUpdate(at_s=900, hostname=hostname, fan_bump_w=5)
                  for _ in range(3)]
        sim.run(duration_s=units.hours(1), step_s=900, events=events)
        assert router.fan_bump_w == 15
