"""Bulk ingestion of library artefacts into the Zoo."""

import numpy as np
import pytest

from repro import units
from repro.datasheets import build_corpus, parse_corpus
from repro.network import FleetTrafficModel, NetworkSimulation
from repro.psu_opt import clean_exports
from repro.telemetry.snmp import SnmpCollector
from repro.zoo import (
    NetworkPowerZoo,
    Provenance,
    contribute_datasheets,
    contribute_measurements,
    contribute_power_models,
    contribute_psu_points,
    vendor_lookup,
)


@pytest.fixture
def provenance():
    return Provenance(contributor="test", method="snmp", date="2026-07-04")


@pytest.fixture(scope="module")
def campaign_result(small_fleet_config):
    from repro.network import build_switch_like_network
    network = build_switch_like_network(small_fleet_config,
                                        rng=np.random.default_rng(41))
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(42),
                                n_demands=80)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(43))
    return network, sim.run(duration_s=units.hours(6), step_s=1800)


class TestDatasheetIngestion:
    def test_contributes_sheets_with_power_values(self, provenance):
        corpus = build_corpus(60, np.random.default_rng(3))
        parsed = parse_corpus(corpus)
        zoo = NetworkPowerZoo()
        added = contribute_datasheets(zoo, parsed, provenance)
        assert added > 40
        assert zoo.summary()["datasheet"] == added
        # Vendor names came through the parser.
        vendors = {r.vendor for r in zoo.records("datasheet")}
        assert vendors & {"Cisco", "Arista", "Juniper"}


class TestMeasurementIngestion:
    def test_absent_telemetry_skipped(self, campaign_result, provenance):
        network, result = campaign_result
        zoo = NetworkPowerZoo()
        added = contribute_measurements(zoo, result.snmp, provenance,
                                        vendor_by_model=vendor_lookup())
        silent = sum(
            1 for trace in result.snmp.values()
            if len(trace.power.valid()) < 2)
        assert added == len(result.snmp) - silent
        records = zoo.records("measurement")
        assert all(r.vendor == "Cisco" for r in records)
        assert all(np.isfinite(r.median_w) for r in records)


class TestPsuIngestion:
    def test_points_round_trip(self, campaign_result, provenance):
        network, result = campaign_result
        points = clean_exports(result.sensor_exports)
        zoo = NetworkPowerZoo()
        added = contribute_psu_points(zoo, points, provenance,
                                      vendor_by_model=vendor_lookup())
        assert added == len(points)
        restored = NetworkPowerZoo.from_json(zoo.to_json())
        assert restored.summary()["psu"] == added


class TestModelIngestion:
    def test_models_queryable_after_ingest(self, ncs_model, provenance):
        zoo = NetworkPowerZoo()
        added = contribute_power_models(
            zoo, {"NCS-55A1-24H": ncs_model}, provenance,
            vendor_by_model=vendor_lookup())
        assert added == 1
        records = zoo.for_model("NCS-55A1-24H", kind="power-model")
        assert records[0].power_model.p_base_w.value \
            == pytest.approx(320.0, rel=0.05)

    def test_full_pipeline_one_zoo(self, campaign_result, ncs_model,
                                   provenance):
        """Everything the paper publishes, in one queryable document."""
        network, result = campaign_result
        corpus = build_corpus(40, np.random.default_rng(5))
        zoo = NetworkPowerZoo()
        contribute_datasheets(zoo, parse_corpus(corpus), provenance)
        contribute_measurements(zoo, result.snmp, provenance)
        contribute_psu_points(zoo, clean_exports(result.sensor_exports),
                              provenance)
        contribute_power_models(zoo, {"NCS-55A1-24H": ncs_model},
                                provenance)
        summary = zoo.summary()
        assert all(summary[kind] > 0 for kind in summary)
        # One model has records of several kinds.
        assert len(zoo.for_model("NCS-55A1-24H")) >= 3
