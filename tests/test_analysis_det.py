"""NP-DET fixtures: each determinism rule triggers and passes correctly."""

import textwrap

import pytest

from repro.analysis import check_source


def check(text: str, path: str = "core/fixture.py"):
    return check_source(textwrap.dedent(text).lstrip("\n"), path)


def ids(result) -> list:
    return [finding.rule_id for finding in result.findings]


class TestWallclock:
    @pytest.mark.parametrize("call", [
        "time.time()", "time.time_ns()", "time.monotonic()",
        "time.perf_counter()", "time.process_time()",
    ])
    def test_time_module_reads_flagged(self, call):
        result = check(f'''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                {call}
            ''')
        assert ids(result) == ["NP-DET-001"]

    @pytest.mark.parametrize("call", [
        "datetime.datetime.now()", "datetime.date.today()",
        "datetime.datetime.utcnow()",
    ])
    def test_datetime_reads_flagged(self, call):
        result = check(f'''
            """Mod."""
            import datetime


            def f() -> None:
                """F."""
                {call}
            ''')
        assert ids(result) == ["NP-DET-001"]

    def test_sleep_is_not_a_read(self):
        result = check('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.sleep(0.1)
            ''')
        assert "NP-DET-001" not in ids(result)

    def test_outside_det_packages_unflagged(self):
        result = check('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.time()
            ''', path="lab/fixture.py")
        assert "NP-DET-001" not in ids(result)

    @pytest.mark.parametrize("path", ["obs/tracing.py", "bench.py",
                                      "sweep/runner.py"])
    def test_sanctioned_timing_paths(self, path):
        result = check('''
            """Mod."""
            import time


            def f() -> None:
                """F."""
                time.perf_counter()
            ''', path=path)
        assert "NP-DET-001" not in ids(result)


class TestAmbientRng:
    @pytest.mark.parametrize("call", [
        "random.random()", "random.randint(0, 5)", "random.shuffle(xs)",
        "secrets.token_hex()", "os.urandom(8)", "uuid.uuid4()",
        "uuid.uuid1()",
    ])
    def test_ambient_sources_flagged(self, call):
        result = check(f'''
            """Mod."""
            import os
            import random
            import secrets
            import uuid


            def f(xs: list) -> None:
                """F."""
                {call}
            ''')
        assert ids(result) == ["NP-DET-002"]

    @pytest.mark.parametrize("call", [
        "np.random.rand()", "np.random.seed(0)", "np.random.normal()",
        "numpy.random.randint(3)",
    ])
    def test_legacy_numpy_global_api_flagged(self, call):
        result = check(f'''
            """Mod."""
            import numpy
            import numpy as np


            def f() -> None:
                """F."""
                {call}
            ''')
        assert ids(result) == ["NP-DET-002"]

    def test_seeded_generator_allowed(self):
        result = check('''
            """Mod."""
            import numpy as np


            def f(seed: int) -> float:
                """F."""
                rng = np.random.default_rng(seed)
                return float(rng.normal())
            ''')
        assert result.findings == []

    def test_uuid5_is_deterministic_and_allowed(self):
        result = check('''
            """Mod."""
            import uuid


            def f(name: str) -> uuid.UUID:
                """F."""
                return uuid.uuid5(uuid.NAMESPACE_DNS, name)
            ''')
        assert "NP-DET-002" not in ids(result)


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        result = check('''
            """Mod."""


            def f(xs: list) -> None:
                """F."""
                for x in set(xs):
                    print(x)
            ''')
        assert ids(result) == ["NP-DET-003"]

    def test_for_over_set_literal_flagged(self):
        result = check('''
            """Mod."""


            def f() -> None:
                """F."""
                for x in {"a", "b"}:
                    print(x)
            ''')
        assert ids(result) == ["NP-DET-003"]

    def test_comprehension_over_set_algebra_flagged(self):
        result = check('''
            """Mod."""


            def f(a: list, b: set) -> list:
                """F."""
                return [x for x in set(a) | b]
            ''')
        assert ids(result) == ["NP-DET-003"]

    def test_bare_name_bitor_is_not_assumed_to_be_a_set(self):
        result = check('''
            """Mod."""


            def f(a: int, b: int) -> list:
                """F."""
                return [x for x in range(a | b)]
            ''')
        assert result.findings == []

    def test_enumerate_unwrapped(self):
        result = check('''
            """Mod."""


            def f(xs: list) -> None:
                """F."""
                for i, x in enumerate(set(xs)):
                    print(i, x)
            ''')
        assert ids(result) == ["NP-DET-003"]

    def test_sorted_set_allowed(self):
        result = check('''
            """Mod."""


            def f(xs: list) -> None:
                """F."""
                for x in sorted(set(xs)):
                    print(x)
            ''')
        assert result.findings == []

    def test_plain_list_iteration_allowed(self):
        result = check('''
            """Mod."""


            def f(xs: list) -> None:
                """F."""
                for x in xs:
                    print(x)
            ''')
        assert result.findings == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
