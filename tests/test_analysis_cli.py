"""The ``netpower check`` subcommand."""

import json
import textwrap

import pytest

from repro.analysis import REPORT_SCHEMA
from repro.cli import main

CLEAN = textwrap.dedent('''
    """A fixture module that satisfies every rule."""

    SCHEMA = "repro.fixture/v1"


    def f(x: int) -> int:
        """Double ``x``."""
        return 2 * x
    ''').lstrip("\n")

DIRTY = textwrap.dedent('''
    """A fixture module with a determinism violation."""
    import time


    def f() -> float:
        """Read the clock."""
        return time.time()
    ''').lstrip("\n")


@pytest.fixture
def tree(tmp_path):
    package = tmp_path / "repro" / "core"
    package.mkdir(parents=True)
    return package


class TestCheckCommand:
    def test_clean_tree_exits_zero(self, tree, capsys):
        (tree / "clean.py").write_text(CLEAN)
        code = main(["check", str(tree)])
        assert code == 0
        out = capsys.readouterr().out
        assert "checked 1 file(s): 0 finding(s)" in out

    def test_findings_exit_one(self, tree, capsys):
        (tree / "dirty.py").write_text(DIRTY)
        code = main(["check", str(tree)])
        assert code == 1
        out = capsys.readouterr().out
        assert "NP-DET-001" in out
        assert "core/dirty.py" in out

    def test_json_format(self, tree, capsys):
        (tree / "dirty.py").write_text(DIRTY)
        code = main(["check", str(tree), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == REPORT_SCHEMA
        assert document["counts"]["findings"] == 1
        assert document["findings"][0]["rule"] == "NP-DET-001"

    def test_select_narrows_rules(self, tree, capsys):
        (tree / "dirty.py").write_text(DIRTY)
        code = main(["check", str(tree), "--select", "NP-SCHEMA"])
        assert code == 0
        assert "NP-DET-001" not in capsys.readouterr().out

    def test_stale_suppression_fails_the_run(self, tree, capsys):
        (tree / "stale.py").write_text(CLEAN.replace(
            "return 2 * x",
            "return 2 * x  # netpower: ignore[NP-DET-001] -- stale"))
        code = main(["check", str(tree)])
        assert code == 1
        assert "NP-SUPPRESS" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tree, capsys):
        code = main(["check", str(tree / "no-such-dir")])
        assert code == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        code = main(["check", "--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule_id in ("NP-DET-001", "NP-UNIT-001", "NP-API-001",
                        "NP-SCHEMA-001"):
            assert rule_id in out

    def test_repository_source_tree_is_clean(self, capsys):
        # The CLI-level twin of tests/test_analysis_selfcheck.py.
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        code = main(["check", str(src)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert " 0 finding(s)" in out


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
