"""NP-ASYNC: event-loop safety rules over fixture programs."""

import textwrap

import pytest

from repro.analysis import check_sources


def src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def by_rule(result, rule_id: str) -> list:
    return [f for f in result.findings if f.rule_id == rule_id]


class TestBlockingOnTheLoop:
    def test_direct_sleep_is_flagged(self):
        result = check_sources({
            "serve/handlers.py": src('''
                """Handlers."""
                import time


                async def handle() -> None:
                    """Handle one request."""
                    time.sleep(0.1)
                '''),
        })
        findings = by_rule(result, "NP-ASYNC-001")
        assert len(findings) == 1
        message = findings[0].message
        assert "blocking call on the event loop" in message
        assert "repro.serve.handlers.handle" in message
        assert "time.sleep()" in message

    def test_blocking_through_sync_helper_in_other_module(self):
        result = check_sources({
            "diskutil.py": src('''
                """Disk helper."""


                def persist(path: str, text: str) -> None:
                    """Blocking write, fine from sync code."""
                    with open(path, "w") as handle:
                        handle.write(text)
                '''),
            "serve/handlers.py": src('''
                """Handlers."""
                from repro.diskutil import persist


                async def handle() -> None:
                    """The blocking call is two frames down."""
                    persist("/tmp/out", "x")
                '''),
        })
        findings = by_rule(result, "NP-ASYNC-001")
        assert len(findings) == 1
        message = findings[0].message
        # The chain names every hop down to the primitive.
        assert "repro.serve.handlers.handle" in message
        assert "repro.diskutil.persist" in message
        assert "open()" in message

    def test_run_in_executor_escapes_the_loop(self):
        result = check_sources({
            "serve/handlers.py": src('''
                """Handlers."""
                import asyncio
                import time


                async def handle() -> None:
                    """The sanctioned shape for blocking work."""
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, time.sleep, 0.1)
                '''),
        })
        assert by_rule(result, "NP-ASYNC-001") == []

    def test_sync_caller_is_not_flagged(self):
        result = check_sources({
            "serve/handlers.py": src('''
                """Handlers."""
                import time


                def warmup() -> None:
                    """Sync code may block."""
                    time.sleep(0.1)
                '''),
        })
        assert by_rule(result, "NP-ASYNC-001") == []

    def test_direct_predict_trace_is_flagged(self):
        result = check_sources({
            "core/model.py": src('''
                """Core model."""


                def predict_trace(doc: dict) -> dict:
                    """The expensive kernel."""
                    return doc
                '''),
            "serve/handlers.py": src('''
                """Handlers."""
                from repro.core.model import predict_trace


                async def handle(doc: dict) -> dict:
                    """Bypasses the batcher."""
                    return predict_trace(doc)
                '''),
        })
        findings = by_rule(result, "NP-ASYNC-001")
        assert len(findings) == 1
        assert "PredictBatcher" in findings[0].message


class TestUnawaited:
    def test_bare_coroutine_call_is_flagged(self):
        result = check_sources({
            "serve/handlers.py": src('''
                """Handlers."""


                async def audit() -> None:
                    """Audit."""


                async def handle() -> None:
                    """The coroutine object is built and dropped."""
                    audit()
                '''),
        })
        findings = by_rule(result, "NP-ASYNC-002")
        assert len(findings) == 1
        assert "repro.serve.handlers.audit" in findings[0].message
        assert "never awaited" in findings[0].message

    def test_awaited_call_is_fine(self):
        result = check_sources({
            "serve/handlers.py": src('''
                """Handlers."""


                async def audit() -> None:
                    """Audit."""


                async def handle() -> None:
                    """Handle."""
                    await audit()
                '''),
        })
        assert by_rule(result, "NP-ASYNC-002") == []

    def test_dropped_create_task_handle_is_flagged(self):
        result = check_sources({
            "serve/handlers.py": src('''
                """Handlers."""
                import asyncio


                async def audit() -> None:
                    """Audit."""


                async def handle() -> None:
                    """Nothing holds the task alive."""
                    asyncio.create_task(audit())
                '''),
        })
        findings = by_rule(result, "NP-ASYNC-002")
        assert len(findings) == 1
        assert "task handle dropped" in findings[0].message

    def test_kept_handle_is_fine(self):
        result = check_sources({
            "serve/handlers.py": src('''
                """Handlers."""
                import asyncio


                async def audit() -> None:
                    """Audit."""


                async def handle() -> None:
                    """Handle."""
                    task = asyncio.create_task(audit())
                    await task
                '''),
        })
        assert by_rule(result, "NP-ASYNC-002") == []


class TestCrossTaskState:
    def test_attribute_written_under_two_roots_is_flagged(self):
        result = check_sources({
            "serve/workers.py": src('''
                """Two tasks mutate the same attribute."""
                import asyncio


                class App:
                    """App."""

                    def __init__(self) -> None:
                        """Init."""
                        self.hits = 0

                    async def pinger(self) -> None:
                        """Writer one."""
                        self.hits += 1

                    async def poller(self) -> None:
                        """Writer two."""
                        self.hits = 0

                    async def run(self) -> None:
                        """Spawn both."""
                        first = asyncio.create_task(self.pinger())
                        second = asyncio.create_task(self.poller())
                        await first
                        await second
                '''),
        })
        findings = by_rule(result, "NP-ASYNC-003")
        assert len(findings) == 1
        message = findings[0].message
        assert "App.hits" in message
        assert "2 task roots" in message

    def test_single_root_is_fine(self):
        result = check_sources({
            "serve/workers.py": src('''
                """One task, one writer."""
                import asyncio


                class App:
                    """App."""

                    def __init__(self) -> None:
                        """Init."""
                        self.hits = 0

                    async def pinger(self) -> None:
                        """The only writer."""
                        self.hits += 1

                    async def run(self) -> None:
                        """Spawn one."""
                        first = asyncio.create_task(self.pinger())
                        await first
                '''),
        })
        assert by_rule(result, "NP-ASYNC-003") == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
