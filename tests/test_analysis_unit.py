"""NP-UNIT fixtures: scale literals, mixed suffixes, float equality."""

import textwrap

import pytest

from repro.analysis import check_source


def check(text: str, path: str = "core/fixture.py"):
    return check_source(textwrap.dedent(text).lstrip("\n"), path)


def ids(result) -> list:
    return [finding.rule_id for finding in result.findings]


class TestScaleLiterals:
    @pytest.mark.parametrize("expr", [
        "x * 1e9", "x / 1e-12", "1e6 * x", "x * 1000.0", "x / 1000",
        "x * 1_000_000",
    ])
    def test_multiplicative_scale_factors_flagged(self, expr):
        result = check(f'''
            """Mod."""


            def f(x: float) -> float:
                """F."""
                return {expr}
            ''')
        assert ids(result) == ["NP-UNIT-001"]

    def test_power_of_ten_exponent_flagged(self):
        result = check('''
            """Mod."""


            def f(n: int) -> float:
                """F."""
                return 10 ** n
            ''')
        assert ids(result) == ["NP-UNIT-001"]

    @pytest.mark.parametrize("expr", [
        "x * 2.0",         # not a power of ten
        "x * 0.5",         # not a power of ten
        "x * 100",         # |exponent| < 3: percentages etc. stay legal
        "x / 60",          # sexagesimal time, not a unit prefix
        "max(x, 1e-6)",    # epsilon clamp: call argument, not arithmetic
        "x > 1e-9",        # tolerance: comparison, not arithmetic
        "x + 1000",        # additive offsets are NP-UNIT-002's concern
    ])
    def test_non_conversions_allowed(self, expr):
        result = check(f'''
            """Mod."""


            def f(x: float) -> object:
                """F."""
                return {expr}
            ''')
        assert "NP-UNIT-001" not in ids(result)

    def test_units_module_itself_is_exempt(self):
        result = check('''
            """Mod."""
            GIGA = 1e9


            def gbps_to_bps(gbps: float) -> float:
                """Convert."""
                return gbps * 1e9
            ''', path="units.py")
        assert "NP-UNIT-001" not in ids(result)


class TestMixedSuffixes:
    @pytest.mark.parametrize("expr", [
        "power_w + energy_j",
        "rate_gbps - rate_bps",
        "energy_pj + energy_nj",
        "t_s - t_ms",
    ])
    def test_additive_mixes_flagged(self, expr):
        result = check(f'''
            """Mod."""


            def f(power_w: float, energy_j: float, rate_gbps: float,
                  rate_bps: float, energy_pj: float, energy_nj: float,
                  t_s: float, t_ms: float) -> float:
                """F."""
                return {expr}
            ''')
        assert ids(result) == ["NP-UNIT-002"]

    def test_ordering_comparison_mix_flagged(self):
        result = check('''
            """Mod."""


            def f(rate_gbps: float, cap_bps: float) -> bool:
                """F."""
                return rate_gbps < cap_bps
            ''')
        assert ids(result) == ["NP-UNIT-002"]

    @pytest.mark.parametrize("expr", [
        "a_w + b_w",           # same unit: fine
        "power_w * t_s",       # multiplicative: dimension change is the point
        "energy_j / t_s",      # ditto
        "power_w + margin",    # bare identifier: unknown, not flagged
    ])
    def test_consistent_or_multiplicative_allowed(self, expr):
        result = check(f'''
            """Mod."""


            def f(a_w: float, b_w: float, power_w: float, t_s: float,
                  energy_j: float, margin: float) -> float:
                """F."""
                return {expr}
            ''')
        assert "NP-UNIT-002" not in ids(result)

    def test_attribute_suffixes_recognised(self):
        result = check('''
            """Mod."""


            def f(report: object, sample: object) -> float:
                """F."""
                return report.total_power_w + sample.energy_j
            ''')
        assert ids(result) == ["NP-UNIT-002"]


class TestFloatEquality:
    def test_power_equality_flagged_as_warning(self):
        result = check('''
            """Mod."""


            def f(output_w: float) -> bool:
                """F."""
                return output_w == 120.0
            ''')
        assert ids(result) == ["NP-UNIT-003"]
        assert result.findings[0].severity.value == "warning"

    def test_energy_inequality_flagged(self):
        result = check('''
            """Mod."""


            def f(energy_j: float, other_j: float) -> bool:
                """F."""
                return energy_j != other_j
            ''')
        assert ids(result) == ["NP-UNIT-003"]

    def test_rate_equality_not_flagged(self):
        # Only power/energy dimensions are warned on; counters and
        # configured rates compare exactly all the time.
        result = check('''
            """Mod."""


            def f(rate_bps: float) -> bool:
                """F."""
                return rate_bps == 0
            ''')
        assert "NP-UNIT-003" not in ids(result)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
