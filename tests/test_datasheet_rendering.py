"""Per-template datasheet rendering and the parser against each layout."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasheets.corpus import (
    DatasheetDocument,
    DatasheetTruth,
    _render_portsum_style,
    _render_prose_style,
    _render_table_style,
)
from repro.datasheets.parser import parse_datasheet


def make_truth(typical=350.0, maximum=500.0, bandwidth=1200.0,
               psu=(1100,)):
    return DatasheetTruth(
        model="RENDER-TEST-1", vendor="Cisco", series="Render 9000",
        release_year=2019, typical_w=typical, max_w=maximum,
        max_bandwidth_gbps=bandwidth, psu_options_w=psu)


RENDERERS = {
    "table": _render_table_style,
    "prose": _render_prose_style,
    "portsum": _render_portsum_style,
}


class TestEachLayoutParses:
    @pytest.mark.parametrize("name,renderer", RENDERERS.items())
    def test_power_values_recovered(self, name, renderer):
        truth = make_truth()
        # Each template has randomised phrasing; try several draws.
        hits = 0
        for seed in range(12):
            text = renderer(truth, np.random.default_rng(seed))
            record = parse_datasheet(DatasheetDocument(truth, text, "u"))
            if (record.typical_w == pytest.approx(truth.typical_w, rel=0.01)
                    and record.max_w
                    == pytest.approx(truth.max_w, rel=0.01)):
                hits += 1
        assert hits >= 10, f"{name}: only {hits}/12 drew parseable power"

    @pytest.mark.parametrize("name,renderer", RENDERERS.items())
    def test_bandwidth_recovered(self, name, renderer):
        truth = make_truth()
        hits = 0
        for seed in range(12):
            text = renderer(truth, np.random.default_rng(seed))
            record = parse_datasheet(DatasheetDocument(truth, text, "u"))
            if record.max_bandwidth_gbps is not None and \
                    record.max_bandwidth_gbps \
                    == pytest.approx(truth.max_bandwidth_gbps, rel=0.05):
                hits += 1
        assert hits >= 8, f"{name}: only {hits}/12 bandwidths recovered"

    def test_vendor_always_found(self):
        truth = make_truth()
        for name, renderer in RENDERERS.items():
            text = renderer(truth, np.random.default_rng(0))
            record = parse_datasheet(DatasheetDocument(truth, text, "u"))
            assert record.vendor == "Cisco", name


class TestAwkwardSheets:
    def test_missing_typical_never_invented(self):
        truth = make_truth(typical=None)
        for seed in range(10):
            text = _render_table_style(truth, np.random.default_rng(seed))
            record = parse_datasheet(DatasheetDocument(truth, text, "u"))
            # Either absent or a TBD line -- but never a number.
            assert record.typical_w is None

    def test_kilowatt_sheets(self):
        truth = make_truth(typical=1500.0, maximum=2500.0, bandwidth=9600)
        found = 0
        for seed in range(20):
            text = _render_table_style(truth, np.random.default_rng(seed))
            if "kW" in text:
                record = parse_datasheet(
                    DatasheetDocument(truth, text, "u"))
                assert record.typical_w == pytest.approx(1500, rel=0.01)
                found += 1
        assert found > 0, "no kW rendering drawn in 20 tries"

    def test_tbps_sheets(self):
        truth = make_truth(bandwidth=3200)
        found = 0
        for seed in range(20):
            text = _render_prose_style(truth, np.random.default_rng(seed))
            if "Tbps" in text:
                record = parse_datasheet(
                    DatasheetDocument(truth, text, "u"))
                assert record.max_bandwidth_gbps \
                    == pytest.approx(3200, rel=0.01)
                found += 1
        assert found > 0

    def test_psu_options_from_table(self):
        truth = make_truth(psu=(750, 1100))
        text = _render_table_style(truth, np.random.default_rng(1))
        record = parse_datasheet(DatasheetDocument(truth, text, "u"))
        assert set(record.psu_options_w) <= {750, 1100}

    @given(st.floats(min_value=20, max_value=900),
           st.sampled_from([24, 128, 480, 1200, 3200]))
    @settings(max_examples=25)
    def test_prose_robust_to_any_truth(self, typical, bandwidth):
        truth = make_truth(typical=round(typical),
                           maximum=round(typical * 1.5),
                           bandwidth=float(bandwidth))
        text = _render_prose_style(truth, np.random.default_rng(7))
        record = parse_datasheet(DatasheetDocument(truth, text, "u"))
        assert record.typical_w == pytest.approx(round(typical), rel=0.02)
