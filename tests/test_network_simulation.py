"""Fleet simulation: events, collection, and the Fig. 1 aggregates."""

import numpy as np
import pytest

from repro import units
from repro.network import (
    AddExternalInterface,
    Commission,
    Decommission,
    DeployAutopower,
    FleetTrafficModel,
    NetworkSimulation,
    OsUpdate,
    PowerCycle,
    SetAdminState,
    UnplugModule,
)


@pytest.fixture
def sim(small_fleet, rng):
    traffic = FleetTrafficModel(small_fleet, rng=rng, n_demands=100)
    return NetworkSimulation(small_fleet, traffic,
                             rng=np.random.default_rng(3))


class TestBasicRun:
    def test_result_shapes(self, sim):
        result = sim.run(duration_s=units.hours(6), step_s=600)
        assert len(result.total_power) == 36
        assert len(result.total_traffic_bps) == 36
        assert len(result.snmp) == 18
        assert result.sensor_exports  # §9.2 export comes along

    def test_power_plausible_and_traffic_flowing(self, sim, small_fleet):
        result = sim.run(duration_s=units.hours(3), step_s=600)
        instant = small_fleet.total_wall_power_w()
        assert result.total_power.mean() == pytest.approx(instant, rel=0.05)
        assert result.total_traffic_bps.mean() > 0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.run(duration_s=0, step_s=300)
        with pytest.raises(ValueError):
            sim.run(duration_s=300, step_s=0)


class TestEvents:
    def _host_with_module(self, fleet):
        for hostname in sorted(fleet.routers):
            router = fleet.routers[hostname]
            for port in router.ports:
                if port.plugged and port.link_up:
                    return hostname, port.index
        raise AssertionError("no active port found")

    def test_os_update_bumps_power(self, sim, small_fleet):
        host = sorted(small_fleet.routers)[0]
        result = sim.run(
            duration_s=units.hours(8), step_s=600,
            events=[OsUpdate(at_s=units.hours(4), hostname=host,
                             fan_bump_w=45.0)])
        power = result.snmp[host].power.valid()
        before = power.slice(0, units.hours(4)).mean()
        after = power.slice(units.hours(4) + 600, units.hours(8)).mean()
        assert after - before == pytest.approx(45.0, abs=8.0)

    def test_unplug_module_drops_power(self, sim, small_fleet):
        host, port_idx = self._host_with_module(small_fleet)
        port = small_fleet.routers[host].port(port_idx)
        truth = port.class_truth()
        drop = truth.p_trx_in_w + truth.p_trx_up_w + truth.p_port_w
        result = sim.run(
            duration_s=units.hours(8), step_s=600,
            events=[UnplugModule(at_s=units.hours(4), hostname=host,
                                 port_index=port_idx)])
        assert not port.plugged
        power = result.snmp[host].power.valid()
        if len(power) > 0 and drop > 1.0:
            before = power.slice(0, units.hours(4)).mean()
            after = power.slice(units.hours(4) + 600, units.hours(8)).mean()
            assert before - after > 0.2 * drop

    def test_admin_down_keeps_module_drawing(self, sim, small_fleet):
        host, port_idx = self._host_with_module(small_fleet)
        port = small_fleet.routers[host].port(port_idx)
        sim.run(duration_s=units.hours(2), step_s=600,
                events=[SetAdminState(at_s=600, hostname=host,
                                      port_index=port_idx, up=False)])
        assert port.plugged and not port.admin_up
        truth = port.class_truth()
        assert port.static_power_w() == pytest.approx(truth.p_trx_in_w)

    def test_decommission_and_commission(self, sim, small_fleet):
        host = sorted(small_fleet.routers)[-1]
        result = sim.run(
            duration_s=units.hours(9), step_s=600,
            events=[Decommission(at_s=units.hours(3), hostname=host),
                    Commission(at_s=units.hours(6), hostname=host)])
        total = result.total_power
        mid = total.slice(units.hours(3) + 600, units.hours(6)).mean()
        tail = total.slice(units.hours(6) + 600, units.hours(9)).mean()
        assert tail - mid > 20  # the Fig. 1 commissioning step

    def test_add_external_interface(self, sim, small_fleet):
        host = sorted(small_fleet.routers)[0]
        router = small_fleet.routers[host]
        free = next(p.index for p in router.ports if not p.plugged)
        n_links = len(small_fleet.links)
        sim.run(duration_s=units.hours(2), step_s=600,
                events=[AddExternalInterface(
                    at_s=600, hostname=host, port_index=free,
                    trx_name="QSFP-DD-400G-FR4"
                    if router.port(free).port_type.value == "QSFP-DD"
                    else "SFP+-10G-LR")])
        assert len(small_fleet.links) == n_links + 1
        assert router.port(free).link_up

    def test_power_cycle_event(self, sim, small_fleet):
        host = sorted(small_fleet.routers)[0]
        boots = small_fleet.routers[host]._boots
        sim.run(duration_s=units.hours(1), step_s=600,
                events=[PowerCycle(at_s=600, hostname=host)])
        assert small_fleet.routers[host]._boots == boots + 1


class TestAutopowerIntegration:
    def test_deploy_event_produces_external_trace(self, sim, small_fleet):
        host = sorted(small_fleet.routers)[0]
        result = sim.run(
            duration_s=units.hours(6), step_s=600,
            events=[DeployAutopower(at_s=units.hours(2), hostname=host)])
        series = result.autopower[host]
        assert len(series) > 0
        # No samples before deployment.
        assert series.timestamps[0] >= units.hours(2)
        router = small_fleet.routers[host]
        assert series.mean() == pytest.approx(router.wall_power_w(),
                                              rel=0.10)

    def test_detailed_hosts_inferred_from_events(self, sim, small_fleet):
        host = sorted(small_fleet.routers)[2]
        result = sim.run(duration_s=units.hours(1), step_s=600,
                         events=[OsUpdate(at_s=600, hostname=host)])
        assert result.snmp[host].interfaces  # counters recorded for target
