"""The simulated MCP39F511N power meter."""

import numpy as np
import pytest

from repro.lab.power_meter import (
    MCP39F511N_ACCURACY,
    PowerMeter,
    PowerSample,
    summarize,
)


class TestMeterErrorModel:
    def test_gain_within_spec(self, rng):
        gains = [PowerMeter(rng=np.random.default_rng(i)).channels[0].gain
                 for i in range(200)]
        assert all(abs(g - 1.0) <= MCP39F511N_ACCURACY for g in gains)
        assert np.std(gains) > 0  # different meters differ

    def test_gain_constant_per_session(self, rng):
        meter = PowerMeter(rng=rng)
        meter.attach(lambda: 100.0)
        readings = [meter.read(i).power_w for i in range(100)]
        # Same gain throughout: spread is additive noise only.
        assert np.std(readings) < 0.3

    def test_mean_close_to_truth(self, rng):
        meter = PowerMeter(rng=rng)
        meter.attach(lambda: 350.0)
        readings = [meter.read(i).power_w for i in range(500)]
        assert np.mean(readings) == pytest.approx(350.0, rel=0.006)

    def test_quantisation(self, rng):
        meter = PowerMeter(rng=rng)
        meter.attach(lambda: 123.456789)
        value = meter.read(0).power_w
        assert round(value * 100) == pytest.approx(value * 100)

    def test_unplugged_channel_reads_zero(self, rng):
        meter = PowerMeter(rng=rng, noise_std_w=0.0)
        assert meter.read(0, channel=1).power_w == 0.0

    def test_two_channels_independent(self, rng):
        meter = PowerMeter(rng=rng, noise_std_w=0.0)
        meter.attach(lambda: 100.0, channel=0)
        meter.attach(lambda: 5.0, channel=1)
        assert meter.read(0, channel=0).power_w == pytest.approx(100, rel=0.01)
        assert meter.read(0, channel=1).power_w == pytest.approx(5, rel=0.01)

    def test_detach(self, rng):
        meter = PowerMeter(rng=rng, noise_std_w=0.0)
        meter.attach(lambda: 42.0)
        meter.detach()
        assert meter.read(0).power_w == 0.0

    def test_never_negative(self):
        meter = PowerMeter(rng=np.random.default_rng(0), noise_std_w=5.0)
        meter.attach(lambda: 0.5)
        assert all(meter.read(i).power_w >= 0 for i in range(200))


class TestSummarize:
    def test_statistics(self):
        samples = [PowerSample(timestamp_s=float(i), power_w=w)
                   for i, w in enumerate([10, 12, 11, 13, 14])]
        summary = summarize(samples)
        assert summary.mean_w == pytest.approx(12.0)
        assert summary.median_w == pytest.approx(12.0)
        assert summary.n_samples == 5
        assert summary.duration_s == pytest.approx(4.0)
        assert summary.sem_w == pytest.approx(summary.std_w / np.sqrt(5))

    def test_single_sample(self):
        summary = summarize([PowerSample(0.0, 7.0)])
        assert summary.std_w == 0.0
        assert summary.sem_w == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
