"""Drift detection: the shared §6.2 helper, EWMA track, PSU health."""

from __future__ import annotations

import numpy as np

from repro.monitor import (DriftTracker, OnlineEwma, PsuHealthTracker,
                           RollupStore)
from repro.telemetry.traces import TimeSeries
from repro.validation.compare import (AVERAGING_WINDOW_S, compare_series,
                                      windowed_residuals)


def _seeded_pair(seed: int = 13, n: int = 400, offset: float = 21.5):
    """A candidate/reference pair with a known constant offset."""
    rng = np.random.default_rng(seed)
    ts = 600.0 + 300.0 * np.arange(n)
    reference = 480.0 + 25.0 * np.sin(ts / 7000.0) \
        + 1.5 * rng.standard_normal(n)
    candidate = reference + offset + 0.4 * rng.standard_normal(n)
    return TimeSeries(ts, candidate), TimeSeries(ts, reference)


class TestSharedWindowedHelper:
    """Satellite: one §6.2 implementation, used offline AND live."""

    def test_compare_series_is_built_on_windowed_residuals(self):
        candidate, reference = _seeded_pair()
        windowed = windowed_residuals(candidate, reference,
                                      window_s=AVERAGING_WINDOW_S)
        stats = compare_series(candidate, reference,
                               window_s=AVERAGING_WINDOW_S)
        # Identical results on the identical seeded trace: the offline
        # comparison and the shared helper must agree bit for bit.
        assert stats.offset_w == windowed.offset_w
        assert stats.residual_std_w == windowed.residual_std_w
        assert stats.n_samples == windowed.n_windows
        assert windowed.n_windows > 0
        np.testing.assert_array_equal(
            windowed.candidate_avg - windowed.reference_avg,
            np.asarray(windowed.candidate_avg)
            - np.asarray(windowed.reference_avg))

    def test_recovers_known_offset(self):
        candidate, reference = _seeded_pair(offset=21.5)
        windowed = windowed_residuals(candidate, reference)
        assert abs(windowed.offset_w - 21.5) < 0.5
        assert windowed.residual_std_w < 1.0

    def test_empty_on_no_overlap(self):
        a = TimeSeries(np.array([0.0, 300.0]), np.array([1.0, 2.0]))
        b = TimeSeries(np.array([10000.0, 10300.0]), np.array([1.0, 2.0]))
        assert windowed_residuals(a, b).empty
        assert windowed_residuals(TimeSeries(np.array([]), np.array([])),
                                  a).empty

    def test_drift_tracker_refresh_equals_offline_compare(self):
        """The live tracker's windowed stats == the offline pipeline."""
        candidate, reference = _seeded_pair()
        store = RollupStore()
        tracker = DriftTracker("r1", "model/r1", "ap/r1", store)
        for t, c, r in zip(candidate.timestamps, candidate.values,
                           reference.values):
            store.add("model/r1", float(t), float(c))
            store.add("ap/r1", float(t), float(r))
            tracker.update(float(t), float(c), float(r))
        tracker.refresh()
        live = tracker.estimate()
        offline = compare_series(candidate, reference,
                                 window_s=AVERAGING_WINDOW_S)
        assert live.offset_w == offline.offset_w
        assert live.stats.residual_std_w == offline.residual_std_w
        assert live.stats.n_samples == offline.n_samples
        assert live.verdict() == offline.verdict().name


class TestOnlineEwma:
    def test_converges_to_mean(self):
        rng = np.random.default_rng(3)
        ewma = OnlineEwma(alpha=0.1)
        for value in 50.0 + 2.0 * rng.standard_normal(500):
            ewma.update(float(value))
        assert abs(ewma.mean - 50.0) < 1.5
        assert 0.5 < ewma.std < 5.0

    def test_z_is_zero_during_warmup(self):
        ewma = OnlineEwma()
        assert ewma.z(100.0) == 0.0
        ewma.update(1.0)
        ewma.update(2.0)
        assert ewma.z(100.0) == 0.0   # still warming up

    def test_z_flags_outliers(self):
        ewma = OnlineEwma(alpha=0.2)
        for value in (10.0, 10.2, 9.8, 10.1, 9.9, 10.0):
            ewma.update(value)
        assert abs(ewma.z(10.0)) < 2.0
        assert abs(ewma.z(20.0)) > 4.0

    def test_rejects_bad_alpha(self):
        import pytest
        with pytest.raises(ValueError):
            OnlineEwma(alpha=0.0)
        with pytest.raises(ValueError):
            OnlineEwma(alpha=1.5)


class TestPsuHealthTracker:
    def test_baseline_then_drop_detection(self):
        tracker = PsuHealthTracker(baseline_samples=3)
        # Healthy readings: ~90 % efficiency.
        for i in range(3):
            drop = tracker.record("r1", 0, 300.0 * i, 100.0, 90.0, 750.0)
        assert drop is not None and abs(drop) < 1e-9
        # A degradation event: efficiency falls to 85 %.
        drop = tracker.record("r1", 0, 1200.0, 100.0, 85.0, 750.0)
        assert abs(drop - 0.05) < 1e-9

    def test_no_drop_before_baseline(self):
        tracker = PsuHealthTracker(baseline_samples=3)
        assert tracker.record("r1", 0, 0.0, 100.0, 90.0, 750.0) is None
        assert tracker.record("r1", 0, 300.0, 100.0, 90.0, 750.0) is None

    def test_health_view_sorted_and_bounded(self):
        tracker = PsuHealthTracker(baseline_samples=2, max_samples=8)
        for i in range(50):
            tracker.record("r2", 1, 300.0 * i, 100.0, 90.0, 750.0)
            tracker.record("r1", 0, 300.0 * i, 100.0, 88.0, 750.0)
        health = tracker.health()
        assert [h.key.hostname for h in health] == ["r1", "r2"]
        for h in health:
            assert abs(h.drop) < 1e-9
        for trace in tracker.traces.values():
            assert len(trace.timestamps) <= 8
