"""The VirtualRouter ground-truth engine: the §5.2 equations as physics."""

import numpy as np
import pytest

from repro import units
from repro.hardware import (
    PsuSensorQuirk,
    SharingPolicy,
    VirtualRouter,
    connect,
    disconnect,
    router_spec,
)


@pytest.fixture
def cabled_router(quiet_router):
    """Four DAC-plugged ports cabled in two pairs, all down."""
    r = quiet_router
    for i in range(4):
        r.port(i).plug("QSFP28-100G-DAC")
    connect(r.port(0), r.port(1))
    connect(r.port(2), r.port(3))
    return r


class TestExperimentEquations:
    """The Base/Idle/Port/Trx ladder of Eqs. (7)-(10), noise-free."""

    def test_base(self, quiet_router):
        assert quiet_router.wall_referred_power_w() == pytest.approx(320.0)

    def test_idle_adds_2n_trx_in(self, cabled_router):
        # 4 plugged modules at P_trx,in = 0.02 W.
        assert cabled_router.wall_referred_power_w() == pytest.approx(
            320.0 + 4 * 0.02)

    def test_port_adds_n_p_port(self, cabled_router):
        cabled_router.port(0).set_admin(True)
        cabled_router.port(2).set_admin(True)
        assert cabled_router.wall_referred_power_w() == pytest.approx(
            320.0 + 4 * 0.02 + 2 * 0.32)

    def test_trx_adds_both_sides(self, cabled_router):
        for i in range(4):
            cabled_router.port(i).set_admin(True)
        assert cabled_router.wall_referred_power_w() == pytest.approx(
            320.0 + 4 * (0.02 + 0.32 + 0.19))

    def test_half_up_pair_keeps_link_down(self, cabled_router):
        cabled_router.port(0).set_admin(True)
        assert not cabled_router.port(0).link_up
        cabled_router.port(1).set_admin(True)
        assert cabled_router.port(0).link_up


class TestDynamicPower:
    def test_traffic_terms(self, cabled_router):
        r = cabled_router
        for i in range(4):
            r.port(i).set_admin(True)
        static = r.wall_referred_power_w()
        r.port(0).offer_traffic(rx_bps=0, tx_bps=100e9, packet_bytes=1500)
        with_traffic = r.wall_referred_power_w()
        expected = (0.37                                    # P_offset
                    + 22e-12 * 100e9                        # E_bit * r
                    + 58e-9 * units.packet_rate(100e9, 1500))
        assert with_traffic - static == pytest.approx(expected, rel=1e-6)

    def test_no_traffic_when_link_down(self, cabled_router):
        port = cabled_router.port(0)
        port.set_admin(True)  # peer still down -> link down
        port.offer_traffic(rx_bps=1e9, tx_bps=0)
        assert port.dynamic_power_w() == 0.0

    def test_over_line_rate_rejected(self, cabled_router):
        with pytest.raises(ValueError, match="exceeds line rate"):
            cabled_router.port(0).offer_traffic(rx_bps=150e9)

    def test_negative_rate_rejected(self, cabled_router):
        with pytest.raises(ValueError):
            cabled_router.port(0).offer_traffic(rx_bps=-1)


class TestDownNotOff:
    """The §7 finding, at the router level."""

    def test_admin_down_keeps_trx_in(self, quiet_router):
        base = quiet_router.wall_referred_power_w()
        quiet_router.port(0).plug("QSFP28-100G-LR4")  # stays admin-down
        assert quiet_router.wall_referred_power_w() - base \
            == pytest.approx(2.79)

    def test_unplug_removes_it(self, quiet_router):
        quiet_router.port(0).plug("QSFP28-100G-LR4")
        quiet_router.port(0).unplug()
        assert quiet_router.wall_referred_power_w() == pytest.approx(320.0)


class TestPsuAndWall:
    def test_wall_exceeds_dc(self, quiet_router):
        assert quiet_router.wall_power_w() > quiet_router.device_power_w()

    def test_nominal_instances_reproduce_catalog_wall(self):
        # A router whose PSUs are exactly nominal draws the wall-referred
        # catalog power at the wall -- the calibration contract.
        spec = router_spec("NCS-55A1-24H")
        r = VirtualRouter(spec, rng=np.random.default_rng(0), noise_std_w=0)
        dc = r._dc_from_wall_referred(spec.p_base_w)
        wall = r._nominal_group.wall_power(dc)
        assert wall == pytest.approx(spec.p_base_w, abs=0.5)

    def test_sharing_policy_changes_wall(self, quiet_router):
        balanced = quiet_router.wall_power_w()
        quiet_router.set_sharing_policy(SharingPolicy.SINGLE)
        single = quiet_router.wall_power_w()
        assert single != pytest.approx(balanced, abs=0.1)

    def test_powered_off_draws_nothing(self, quiet_router):
        quiet_router.powered = False
        assert quiet_router.wall_power_w() == 0.0
        assert quiet_router.psu_reported_power_w() is None
        quiet_router.powered = True
        assert quiet_router.wall_power_w() > 0


class TestCountersAndTime:
    def test_counters_accumulate(self, cabled_router):
        r = cabled_router
        for i in range(4):
            r.port(i).set_admin(True)
        r.port(0).offer_traffic(rx_bps=0, tx_bps=10e9, packet_bytes=1500)
        r.advance(300)
        counters = r.interface_counters()["Eth0/0"]
        expected_pkts = units.packet_rate(10e9, 1500) * 300
        assert counters.tx_packets == pytest.approx(expected_pkts, rel=1e-3)
        assert counters.tx_octets == pytest.approx(
            expected_pkts * (1500 + units.ETHERNET_HEADER_BYTES), rel=1e-3)
        assert counters.rx_octets == 0

    def test_no_counters_when_link_down(self, quiet_router):
        quiet_router.port(0).plug("QSFP28-100G-DAC")
        quiet_router.advance(300)
        counters = quiet_router.interface_counters()["Eth0/0"]
        assert counters.tx_octets == 0

    def test_power_cycle_resets_counters(self, cabled_router):
        r = cabled_router
        for i in range(4):
            r.port(i).set_admin(True)
        r.port(0).offer_traffic(rx_bps=1e9, tx_bps=1e9)
        r.advance(60)
        r.power_cycle()
        assert r.interface_counters()["Eth0/0"].rx_octets == 0

    def test_negative_dt_rejected(self, quiet_router):
        with pytest.raises(ValueError):
            quiet_router.port(0).advance(-1)

    def test_ambient_noise_bounded(self, rng):
        r = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                          noise_std_w=0.25)
        values = []
        for _ in range(500):
            r.advance(300)
            values.append(r.wall_referred_power_w())
        # wall_referred excludes noise entirely; device power carries it.
        assert np.std(values) == 0.0
        dc = [r.device_power_w() for _ in range(1)]
        assert dc[0] > 0


class TestTelemetryQuirks:
    def test_accurate_quirk_tracks_truth(self, rng):
        r = VirtualRouter(router_spec("Nexus9336-FX2"), rng=rng,
                          noise_std_w=0)
        reported = r.psu_reported_power_w()
        assert reported == pytest.approx(r.wall_power_w(), rel=0.03)

    def test_offset_quirk(self, rng):
        r = VirtualRouter(router_spec("8201-32FH"), rng=rng, noise_std_w=0)
        diffs = [r.psu_reported_power_w() - r.wall_power_w()
                 for _ in range(50)]
        assert np.mean(diffs) == pytest.approx(
            r.spec.psu_report_offset_w, abs=1.0)

    def test_pseudo_constant_quirk_is_flat(self, rng):
        r = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                          noise_std_w=0.25)
        readings = []
        for _ in range(100):
            r.advance(300)
            readings.append(r.psu_reported_power_w())
        # Far less variance than honest sensor noise would produce.
        assert np.std(readings) < 1.0

    def test_pseudo_constant_jumps_on_power_cycle(self):
        r = VirtualRouter(router_spec("NCS-55A1-24H"),
                          rng=np.random.default_rng(3), noise_std_w=0)
        before = r.psu_reported_power_w()
        r.power_cycle()
        after = r.psu_reported_power_w()
        assert abs(after - before) > 0.5  # the Fig. 4b Sep-25 step

    def test_absent_quirk(self, rng):
        r = VirtualRouter(router_spec("N540X-8Z16G-SYS-A"), rng=rng)
        assert r.psu_reported_power_w() is None
        assert r.spec.psu_quirk == PsuSensorQuirk.ABSENT


class TestEvents:
    def test_os_update_fan_bump(self, quiet_router):
        before = quiet_router.wall_referred_power_w()
        quiet_router.apply_os_update(45.0)
        assert quiet_router.wall_referred_power_w() - before \
            == pytest.approx(45.0)

    def test_inventory_reflects_modules(self, quiet_router):
        quiet_router.port(3).plug("QSFP28-100G-LR4")
        inventory = quiet_router.inventory()
        assert inventory["Eth0/3"] == "QSFP28-100G-LR4"
        assert inventory["Eth0/0"] is None

    def test_disconnect_breaks_link(self, cabled_router):
        r = cabled_router
        for i in range(4):
            r.port(i).set_admin(True)
        assert r.port(0).link_up
        disconnect(r.port(0))
        assert not r.port(0).link_up
        assert not r.port(1).link_up

    def test_port_index_error(self, quiet_router):
        with pytest.raises(IndexError, match="24 ports"):
            quiet_router.port(24)
