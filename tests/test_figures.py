"""Figure-data generators."""

import numpy as np
import pytest

from repro import units
from repro.figures import (
    FigureData,
    fig1_data,
    fig2a_data,
    fig2b_data,
    fig4_data,
    fig5_data,
    fig6_data,
    fig8_data,
    fig9_data,
    write_figures,
)
from repro.telemetry.traces import TimeSeries


def series(values, period=1800.0):
    return TimeSeries(period * np.arange(len(values)),
                      np.asarray(values, dtype=float))


class TestFigureData:
    def test_csv_rendering(self):
        figure = FigureData(name="x", columns={"a": [1, 2], "b": [0.5, 1.5]})
        csv = figure.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert csv.splitlines()[1] == "1,0.5"
        assert figure.n_rows == 2

    def test_unequal_columns_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            FigureData(name="x", columns={"a": [1], "b": [1, 2]})

    def test_empty(self):
        assert FigureData(name="x").n_rows == 0


class TestGenerators:
    def test_fig1(self):
        power = series(np.full(48, 22000.0))
        traffic = series(np.full(48, 1.3e12))
        figure = fig1_data(power, traffic)
        assert figure.n_rows > 0
        assert figure.columns["traffic_tbps"][0] == pytest.approx(1.3)

    def test_fig2a(self):
        figure = fig2a_data()
        assert figure.n_rows == 7
        assert figure.columns["w_per_100g"][0] > figure.columns[
            "w_per_100g"][-1]

    def test_fig2b(self):
        from repro.datasheets import build_corpus, parse_corpus
        corpus = build_corpus(80, np.random.default_rng(3))
        parsed = parse_corpus(corpus)
        years = {m: d.truth.release_year
                 for m, d in corpus.documents.items()
                 if d.truth.release_year}
        figure = fig2b_data(parsed, years)
        assert figure.n_rows > 0
        assert max(figure.columns["w_per_100g"]) <= 250

    def test_fig4_with_and_without_psu(self):
        external = series(350 + np.sin(np.arange(96) / 5))
        model = series(340 + np.sin(np.arange(96) / 5))
        with_psu = fig4_data(external, external.shifted(17), model)
        assert "psu_w" in with_psu.columns
        without = fig4_data(external, None, model)
        assert "psu_w" not in without.columns
        assert without.n_rows == with_psu.n_rows

    def test_fig5(self):
        figure = fig5_data()
        effs = figure.columns["pfe600_eff_pct"]
        assert max(effs) == pytest.approx(94.0, abs=0.3)
        assert "setpoint_titanium" in figure.columns

    def test_fig6(self, fleet):
        from repro.psu_opt import clean_exports
        from repro.telemetry.snmp import SnmpCollector
        points = clean_exports(
            SnmpCollector(list(fleet.routers.values()),
                          detailed_hosts=[]).sensor_exports())
        figure = fig6_data(points)
        assert figure.n_rows == len(points)
        one_model = fig6_data(points, "8201-32FH")
        assert 0 < one_model.n_rows < figure.n_rows

    def test_fig8(self):
        power = series(np.concatenate([np.full(48, 362.0),
                                       np.full(48, 407.0)]))
        figure = fig8_data(power)
        values = figure.columns["power_w"]
        assert values[-1] - values[0] == pytest.approx(45.0, abs=2)

    def test_fig9(self):
        external = series(365 + 0.5 * np.sin(np.arange(96) / 4))
        model = external.shifted(-9.0)
        figure = fig9_data(external, model, offset_w=-9.0)
        diffs = (np.array(figure.columns["model_minus_offset_w"])
                 - np.array(figure.columns["autopower_w"]))
        finite = diffs[~np.isnan(diffs)]
        assert np.max(np.abs(finite)) < 0.2


class TestWriter:
    def test_write_figures(self, tmp_path):
        figures = [fig2a_data(), fig5_data()]
        paths = write_figures(figures, tmp_path / "figures")
        assert len(paths) == 2
        content = (tmp_path / "figures" / "fig2a_asic_efficiency.csv"
                   ).read_text()
        assert content.startswith("year,")
