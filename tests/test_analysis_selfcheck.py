"""The checker over its own repository: ``src/`` must be clean.

This is the tentpole invariant: every rule passes over the real tree,
every suppression is justified, and none is stale.  A regression here
means either new code broke a convention or a suppression rotted.
"""

from pathlib import Path

import pytest

from repro.analysis import check_paths, parse_suppressions

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture(scope="module")
def result():
    assert SRC.is_dir(), f"source tree not found at {SRC}"
    return check_paths([SRC])


def test_source_tree_has_no_unsuppressed_findings(result):
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, f"netpower check found violations:\n{rendered}"


def test_no_stale_suppressions(result):
    assert result.unused_suppressions == [], (
        "suppressions that match no finding should be deleted: "
        f"{result.unused_suppressions}")


def test_no_unjustified_suppressions(result):
    assert result.unjustified_suppressions == [], (
        "suppressions without a '-- reason' justification: "
        f"{result.unjustified_suppressions}")


def test_tree_is_clean_under_whole_program_families():
    """NP-FLOW / NP-ASYNC / NP-MUT over the real tree, explicitly.

    The module-scoped fixture already runs every family; this test
    pins the whole-program families on their own so a regression in
    one of them cannot hide behind an unrelated per-file finding.
    """
    from repro.analysis import CheckConfig

    result = check_paths(
        [SRC], CheckConfig(select=("NP-FLOW", "NP-ASYNC", "NP-MUT")))
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.clean, (
        f"whole-program analysis found violations:\n{rendered}")


def test_every_file_was_checked(result):
    # Guard against the discovery step silently skipping the tree.
    assert len(result.paths) >= 70
    assert "core/model.py" in result.paths
    assert "analysis/engine.py" in result.paths


def test_every_suppression_in_tree_carries_a_reason():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        for suppression in parse_suppressions(path.read_text()):
            if not suppression.reason:
                missing.append(f"{path.name}:{suppression.line}")
    assert missing == [], (
        f"suppressions without a '-- why' justification: {missing}")


def test_suppression_budget():
    # Suppressions are exceptions; if this number creeps up, the
    # conventions are eroding.  Raise it consciously, not by accident.
    total = sum(len(parse_suppressions(path.read_text()))
                for path in SRC.rglob("*.py"))
    assert total <= 12, f"{total} suppressions in src/repro"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
