"""GREEN-style continuous PSU monitoring (§9.4 / §10's missing piece)."""

import numpy as np
import pytest

from repro import units
from repro.hardware import VirtualRouter, router_spec
from repro.telemetry.green import EfficiencyDrift, GreenCollector, PsuKey


@pytest.fixture
def routers(rng):
    return [
        VirtualRouter(router_spec("NCS-55A1-24H"), hostname="green-ncs",
                      rng=rng, noise_std_w=0.1),
        VirtualRouter(router_spec("8201-32FH"), hostname="green-8201",
                      rng=rng, noise_std_w=0.1),
    ]


def run_collection(collector, routers, days, period_s=units.hours(6)):
    t = 0.0
    while t < units.days(days):
        for router in routers:
            router.advance(period_s)
        t += period_s
        collector.record(t)


class TestCollection:
    def test_one_trace_per_psu(self, routers):
        collector = GreenCollector(routers)
        assert len(collector.traces) == 4
        run_collection(collector, routers, days=2)
        for trace in collector.traces.values():
            assert len(trace.timestamps) == 8

    def test_efficiency_series_capped(self, routers):
        collector = GreenCollector(routers)
        run_collection(collector, routers, days=4)
        for trace in collector.traces.values():
            series = trace.efficiency_series().valid()
            assert np.all(series.values <= 1.0)
            assert np.all(series.values > 0.2)

    def test_load_series(self, routers):
        collector = GreenCollector(routers)
        run_collection(collector, routers, days=1)
        trace = collector.traces[PsuKey("green-ncs", 0)]
        loads = trace.load_series()
        assert np.all(loads.values < 0.3)  # oversupplied, like the fleet

    def test_powered_off_routers_skipped(self, routers):
        collector = GreenCollector(routers)
        routers[0].powered = False
        collector.record(100.0)
        assert not collector.traces[PsuKey("green-ncs", 0)].timestamps
        assert collector.traces[PsuKey("green-8201", 0)].timestamps


class TestDriftDetection:
    def test_healthy_psu_not_flagged(self, routers):
        collector = GreenCollector(routers)
        run_collection(collector, routers, days=10)
        assert collector.degrading_psus() == []

    def test_aging_psu_detected(self, routers):
        collector = GreenCollector(routers)
        victim = routers[0].psu_group.instances[0]
        # One month of observation with progressive degradation.
        t = 0.0
        while t < units.days(30):
            for router in routers:
                router.advance(units.hours(6))
            t += units.hours(6)
            victim.apply_aging(-0.0005)  # -6 %-points over the month
            collector.record(t)
        degrading = collector.degrading_psus()
        assert [d.key for d in degrading] == [PsuKey("green-ncs", 0)]
        assert degrading[0].per_month < -0.02

    def test_drift_needs_enough_samples(self, routers):
        collector = GreenCollector(routers)
        collector.record(0.0)
        assert collector.drift(PsuKey("green-ncs", 0)) is None

    def test_this_is_what_snmp_cannot_do(self, routers):
        """The §10 point: P_in-only monitoring cannot separate aging
        from load changes; dual-power collection can."""
        collector = GreenCollector(routers)
        victim_router = routers[0]
        victim = victim_router.psu_group.instances[0]
        t = 0.0
        while t < units.days(20):
            victim_router.advance(units.hours(6))
            t += units.hours(6)
            victim.apply_aging(-0.001)
            collector.record(t)
        # P_in rises -- but so would it with more traffic.  The GREEN
        # series shows efficiency falling at constant load: unambiguous.
        drift = collector.drift(PsuKey("green-ncs", 0))
        trace = collector.traces[PsuKey("green-ncs", 0)]
        load_change = np.ptp(trace.load_series().values)
        assert drift.per_month < -0.02
        assert load_change < 0.05


class TestFloorsAndSummary:
    def test_below_floor(self, routers):
        collector = GreenCollector(routers)
        run_collection(collector, routers, days=3)
        # The 8201's PSUs run at low load with a negative offset: poor.
        flagged = collector.below_floor(0.75)
        assert all(key.hostname == "green-8201" for key in flagged)
        assert flagged  # it does get flagged

    def test_fleet_mean(self, routers):
        collector = GreenCollector(routers)
        run_collection(collector, routers, days=2)
        mean = collector.fleet_mean_efficiency()
        assert 0.5 < mean < 1.0

    def test_fleet_mean_empty(self, routers):
        collector = GreenCollector(routers)
        assert np.isnan(collector.fleet_mean_efficiency())
