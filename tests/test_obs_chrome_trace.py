"""Chrome trace-event (Perfetto) export of the span tree."""

from __future__ import annotations

import json

from repro.obs import chrome_trace, tracing
from repro.obs.export import write_trace


def _sample_tracer():
    tracer = tracing.Tracer()
    clock = iter([0.0, 10.0, 100.0, 400.0, 400.0, 400.0]).__next__
    with tracer.span("sim.run", sim_clock=clock, engine="vector"):
        with tracer.span("sim.steps", sim_clock=clock):
            pass
        with tracer.span("sim.finalize"):
            pass
    return tracer


class TestChromeTraceDocument:
    def test_structure_and_ordering(self):
        tracer = _sample_tracer()
        document = chrome_trace(tracer)
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        metadata = events[0]
        assert metadata["ph"] == "M"
        assert metadata["name"] == "process_name"
        assert metadata["args"] == {"name": "netpower"}
        spans = events[1:]
        assert [e["name"] for e in spans] == \
            ["sim.run", "sim.steps", "sim.finalize"]
        for event in spans:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["cat"] == "netpower"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        # The root starts at the trace origin.
        assert spans[0]["ts"] == 0.0
        # Children start at or after their parent.
        assert spans[1]["ts"] >= spans[0]["ts"]

    def test_attributes_and_sim_clock_in_args(self):
        document = chrome_trace(_sample_tracer())
        root = document["traceEvents"][1]
        assert root["args"]["engine"] == "vector"
        assert root["args"]["sim_start_s"] == 0.0
        assert root["args"]["sim_duration_s"] == 400.0

    def test_empty_tracer(self):
        document = chrome_trace(tracing.Tracer())
        assert len(document["traceEvents"]) == 1  # metadata only

    def test_json_serializable(self):
        json.dumps(chrome_trace(_sample_tracer()))


class TestCounterTracks:
    def test_counter_events_on_sim_time_process(self):
        tracer = _sample_tracer()
        tracer.counter_tracks.append({
            "name": "fleet_power_w", "t_s": [0.0, 300.0, 600.0],
            "values": [10.0, 12.0, 11.0]})
        events = chrome_trace(tracer)["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert [e["args"]["value"] for e in counters] == \
            [10.0, 12.0, 11.0]
        # Counter timestamps are *simulated* seconds-as-microseconds,
        # on their own pid so the two time bases stay separate.
        assert [e["ts"] for e in counters] == [0.0, 3e8, 6e8]
        assert all(e["pid"] == 2 for e in counters)
        names = [e for e in events
                 if e["ph"] == "M" and e["pid"] == 2]
        assert names[0]["args"]["name"] == "simulation (sim-time axis)"

    def test_no_counter_process_without_tracks(self):
        events = chrome_trace(_sample_tracer())["traceEvents"]
        assert all(e["pid"] != 2 for e in events)


class TestSubtraceRows:
    def _stitched(self):
        parent = _sample_tracer()
        parent.trace_id = "sweep-7"
        for index, job in enumerate(["tiny/busy", "tiny/quiet"]):
            child = tracing.Tracer(
                trace_id="sweep-7",
                process={"job": job, "os_pid": 100 + index})
            clock = iter([0.0, 900.0]).__next__
            with child.span("sweep.job", sim_clock=clock, key=job):
                with child.span("sim.run"):
                    pass
            parent.subtraces.append(child.to_dict())
        return parent

    def test_each_subtrace_gets_its_own_pid_row(self):
        events = chrome_trace(self._stitched())["traceEvents"]
        rows = {e["pid"]: e["args"]["name"] for e in events
                if e["ph"] == "M"}
        assert rows[1] == "netpower"
        assert rows[3] == "job=tiny/busy os_pid=100"
        assert rows[4] == "job=tiny/quiet os_pid=101"

    def test_subtrace_spans_nest_and_keep_metadata(self):
        events = chrome_trace(self._stitched())["traceEvents"]
        pid3 = [e for e in events if e["pid"] == 3 and e["ph"] == "X"]
        assert [e["name"] for e in pid3] == ["sweep.job", "sim.run"]
        job = pid3[0]
        assert job["args"]["key"] == "tiny/busy"
        assert job["args"]["sim_start_s"] == 0.0
        assert job["args"]["sim_duration_s"] == 900.0
        assert job["ts"] == 0.0 and job["dur"] >= pid3[1]["dur"]

    def test_unlabelled_subtrace_gets_positional_name(self):
        parent = tracing.Tracer()
        child = tracing.Tracer()
        with child.span("work"):
            pass
        parent.subtraces.append(child.to_dict())
        events = chrome_trace(parent)["traceEvents"]
        row = [e for e in events if e["ph"] == "M" and e["pid"] == 3]
        assert row[0]["args"]["name"] == "subtrace 0"

    def test_stitched_document_serializes(self):
        json.dumps(chrome_trace(self._stitched()))


class TestWriteTraceDispatch:
    def test_trace_json_extension_selects_chrome_format(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "run.trace.json"
        write_trace(path, tracer)
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        assert document["traceEvents"][0]["ph"] == "M"

    def test_plain_json_keeps_native_format(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "run.json"
        write_trace(path, tracer)
        document = json.loads(path.read_text())
        assert document["schema"] == tracing.TRACE_SCHEMA
        assert "spans" in document and "traceEvents" not in document
