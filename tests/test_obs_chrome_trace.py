"""Chrome trace-event (Perfetto) export of the span tree."""

from __future__ import annotations

import json

from repro.obs import chrome_trace, tracing
from repro.obs.export import write_trace


def _sample_tracer():
    tracer = tracing.Tracer()
    clock = iter([0.0, 10.0, 100.0, 400.0, 400.0, 400.0]).__next__
    with tracer.span("sim.run", sim_clock=clock, engine="vector"):
        with tracer.span("sim.steps", sim_clock=clock):
            pass
        with tracer.span("sim.finalize"):
            pass
    return tracer


class TestChromeTraceDocument:
    def test_structure_and_ordering(self):
        tracer = _sample_tracer()
        document = chrome_trace(tracer)
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        metadata = events[0]
        assert metadata["ph"] == "M"
        assert metadata["name"] == "process_name"
        assert metadata["args"] == {"name": "netpower"}
        spans = events[1:]
        assert [e["name"] for e in spans] == \
            ["sim.run", "sim.steps", "sim.finalize"]
        for event in spans:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["cat"] == "netpower"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        # The root starts at the trace origin.
        assert spans[0]["ts"] == 0.0
        # Children start at or after their parent.
        assert spans[1]["ts"] >= spans[0]["ts"]

    def test_attributes_and_sim_clock_in_args(self):
        document = chrome_trace(_sample_tracer())
        root = document["traceEvents"][1]
        assert root["args"]["engine"] == "vector"
        assert root["args"]["sim_start_s"] == 0.0
        assert root["args"]["sim_duration_s"] == 400.0

    def test_empty_tracer(self):
        document = chrome_trace(tracing.Tracer())
        assert len(document["traceEvents"]) == 1  # metadata only

    def test_json_serializable(self):
        json.dumps(chrome_trace(_sample_tracer()))


class TestWriteTraceDispatch:
    def test_trace_json_extension_selects_chrome_format(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "run.trace.json"
        write_trace(path, tracer)
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        assert document["traceEvents"][0]["ph"] == "M"

    def test_plain_json_keeps_native_format(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "run.json"
        write_trace(path, tracer)
        document = json.loads(path.read_text())
        assert document["schema"] == tracing.TRACE_SCHEMA
        assert "spans" in document and "traceEvents" not in document
