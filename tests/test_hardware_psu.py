"""PSU efficiency curves, 80 Plus standards, sharing policies."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hardware.psu import (
    EIGHTY_PLUS_SET_POINTS,
    EightyPlus,
    OffsetCurve,
    PFE600_CURVE,
    PFE600_MODEL,
    PSU_CAPACITIES_W,
    PSUGroup,
    PSUInstance,
    PSUModel,
    QuadraticLossCurve,
    ScaledLossCurve,
    SharingPolicy,
    make_psu_model,
    meets_standard,
    rating_curve,
    standard_curve,
)


class TestPFE600Curve:
    """The Fig. 5 reference curve."""

    def test_fits_its_defining_points_exactly(self):
        assert PFE600_CURVE.efficiency(0.20) == pytest.approx(0.90)
        assert PFE600_CURVE.efficiency(0.50) == pytest.approx(0.94)
        assert PFE600_CURVE.efficiency(1.00) == pytest.approx(0.91)

    def test_poor_below_20_percent(self):
        # "notoriously bad at loads below 10-20 %" (§9.1).
        assert PFE600_CURVE.efficiency(0.10) < 0.85
        assert PFE600_CURVE.efficiency(0.05) < 0.70

    def test_peaks_in_the_50_60_band(self):
        loads = np.linspace(0.05, 1.0, 96)
        effs = [PFE600_CURVE.efficiency(l) for l in loads]
        peak_load = loads[int(np.argmax(effs))]
        assert 0.45 <= peak_load <= 0.70

    def test_monotone_wall_power(self):
        outs = np.linspace(0, 570, 300)
        walls = [PFE600_CURVE.input_power(o, 600) for o in outs]
        assert np.all(np.diff(walls) > 0)

    def test_idle_loss_positive(self):
        assert PFE600_CURVE.idle_loss_w(600) > 0

    def test_three_point_fit_validation(self):
        with pytest.raises(ValueError):
            QuadraticLossCurve.from_efficiency_points([(0.2, 0.9)])
        with pytest.raises(ValueError):
            QuadraticLossCurve.from_efficiency_points(
                [(0.2, 1.2), (0.5, 0.9), (1.0, 0.9)])


class TestEightyPlus:
    def test_rank_ordering(self):
        assert (EightyPlus.BRONZE.rank < EightyPlus.SILVER.rank
                < EightyPlus.GOLD.rank < EightyPlus.PLATINUM.rank
                < EightyPlus.TITANIUM.rank)

    def test_pfe600_is_platinum(self):
        assert meets_standard(PFE600_CURVE, EightyPlus.PLATINUM)

    def test_pfe600_not_titanium(self):
        assert not meets_standard(PFE600_CURVE, EightyPlus.TITANIUM)

    @pytest.mark.parametrize("standard", list(EightyPlus))
    def test_standard_curve_meets_its_level(self, standard):
        assert meets_standard(standard_curve(standard), standard)

    @pytest.mark.parametrize("standard", list(EightyPlus))
    def test_rating_curve_meets_its_level(self, standard):
        assert meets_standard(rating_curve(standard), standard)

    def test_standard_curves_are_ordered_at_typical_loads(self):
        for load in (0.1, 0.2, 0.5):
            effs = [standard_curve(s).efficiency(load) for s in EightyPlus]
            assert effs == sorted(effs)

    def test_platinum_offset_is_essentially_zero(self):
        # The PFE600 *is* Platinum-rated; its curve defines that level.
        assert abs(standard_curve(EightyPlus.PLATINUM).offset) < 0.01


class TestScaledLossCurve:
    def test_scale_one_is_identity(self):
        curve = ScaledLossCurve(base=PFE600_CURVE, scale=1.0)
        for load in (0.05, 0.2, 0.5, 0.9):
            assert curve.efficiency(load) == pytest.approx(
                PFE600_CURVE.efficiency(load))

    def test_larger_scale_is_worse_everywhere(self):
        worse = ScaledLossCurve(base=PFE600_CURVE, scale=2.0)
        for load in (0.05, 0.2, 0.5, 0.9):
            assert worse.efficiency(load) < PFE600_CURVE.efficiency(load)

    def test_through_point(self):
        curve = ScaledLossCurve.through_point(PFE600_CURVE, 0.2, 0.80)
        assert curve.efficiency(0.2) == pytest.approx(0.80)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ScaledLossCurve(base=PFE600_CURVE, scale=0)
        with pytest.raises(ValueError):
            ScaledLossCurve.through_point(PFE600_CURVE, 0.2, 1.5)

    @given(st.floats(min_value=0.3, max_value=3.0))
    def test_wall_power_monotone_for_any_scale(self, scale):
        curve = ScaledLossCurve(base=PFE600_CURVE, scale=scale)
        outs = np.linspace(0, 950, 100)
        walls = [curve.input_power(o, 1000) for o in outs]
        assert np.all(np.diff(walls) > 0)


class TestOffsetCurve:
    def test_positive_offset_improves(self):
        better = OffsetCurve(base=PFE600_CURVE, offset=0.03)
        assert better.efficiency(0.2) == pytest.approx(0.93)

    def test_clamping(self):
        crazy = OffsetCurve(base=PFE600_CURVE, offset=0.5)
        assert crazy.efficiency(0.5) <= OffsetCurve.MAX_EFF

    def test_through_point_reproduces_observation(self):
        # §9.3.4: the constant comes from the observed efficiency point.
        curve = OffsetCurve.through_point(PFE600_CURVE, 0.12, 0.75)
        assert curve.efficiency(0.12) == pytest.approx(0.75)

    def test_through_point_rejects_zero_load(self):
        with pytest.raises(ValueError):
            OffsetCurve.through_point(PFE600_CURVE, 0.0, 0.8)


class TestPSUInstance:
    def test_offset_defined_at_reference_load(self):
        psu = PSUInstance(model=PFE600_MODEL, efficiency_offset=-0.10)
        nominal = PFE600_MODEL.curve.efficiency(psu.reference_load)
        assert psu.efficiency_at(
            psu.reference_load * 600) == pytest.approx(nominal - 0.10,
                                                       abs=1e-6)

    def test_zero_offset_matches_model_curve(self):
        psu = PSUInstance(model=PFE600_MODEL, efficiency_offset=0.0)
        assert psu.efficiency_at(300) == pytest.approx(
            PFE600_MODEL.curve.efficiency(0.5), abs=1e-9)

    def test_input_power_exceeds_output(self):
        psu = PSUInstance(model=PFE600_MODEL)
        for out in (10, 60, 300, 550):
            assert psu.input_power(out) > out

    def test_overload_rejected(self):
        psu = PSUInstance(model=PFE600_MODEL)
        with pytest.raises(ValueError):
            psu.input_power(700)

    def test_sensor_snapshot_noisy_but_close(self, rng):
        psu = PSUInstance(model=PFE600_MODEL, sensor_noise=0.01)
        reading = psu.sensor_snapshot(300, rng)
        assert reading.output_w == pytest.approx(300, rel=0.05)
        assert reading.input_w == pytest.approx(psu.input_power(300),
                                                rel=0.05)

    def test_sensor_can_report_impossible_efficiency(self, rng):
        # §9.2: some PSUs report P_out > P_in; the reading caps it at 1.
        psu = PSUInstance(model=PFE600_MODEL, efficiency_offset=0.04,
                          sensor_noise=0.03)
        efficiencies = [psu.sensor_snapshot(330, rng).efficiency
                        for _ in range(300)]
        assert max(efficiencies) <= 1.0
        assert any(e == 1.0 for e in efficiencies)


class TestPSUGroup:
    def _group(self, policy):
        psus = [PSUInstance(model=PFE600_MODEL) for _ in range(2)]
        return PSUGroup(instances=psus, policy=policy)

    def test_balanced_shares(self):
        group = self._group(SharingPolicy.BALANCED)
        assert group.output_shares(300) == [150, 150]

    def test_single_shares(self):
        group = self._group(SharingPolicy.SINGLE)
        assert group.output_shares(300) == [300, 0]

    def test_single_beats_balanced_at_low_load(self):
        # The §9.3.4 effect: consolidating load onto one PSU improves
        # its operating point when loads are low.
        balanced = self._group(SharingPolicy.BALANCED)
        single = self._group(SharingPolicy.SINGLE)
        assert single.wall_power(120) < balanced.wall_power(120)

    def test_hot_standby_pays_idle_loss(self):
        single = self._group(SharingPolicy.SINGLE)
        standby = self._group(SharingPolicy.HOT_STANDBY)
        assert standby.wall_power(120) > single.wall_power(120)

    def test_loads(self):
        group = self._group(SharingPolicy.BALANCED)
        assert group.loads(600) == [pytest.approx(0.5)] * 2

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            PSUGroup(instances=[])

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            self._group(SharingPolicy.BALANCED).output_shares(-1)


class TestMakePsuModel:
    def test_capacity_options_match_table4(self):
        assert PSU_CAPACITIES_W == (250, 400, 750, 1100, 2000, 2700)

    def test_generic_model(self):
        model = make_psu_model(1100, EightyPlus.GOLD)
        assert model.capacity_w == 1100
        assert meets_standard(model.curve, EightyPlus.GOLD)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PSUModel(name="bad", capacity_w=0, curve=PFE600_CURVE)
