"""Inventory files: capture, round-trip, diff (§6.2 inputs)."""

import pytest

from repro.hardware import VirtualRouter, router_spec
from repro.network.inventory import (
    FleetInventory,
    InventoryChange,
    RouterInventory,
    diff_inventories,
)


@pytest.fixture
def router(rng):
    r = VirtualRouter(router_spec("NCS-55A1-24H"), hostname="inv-test",
                      rng=rng, noise_std_w=0)
    r.port(0).plug("QSFP28-100G-LR4")
    r.port(0).set_admin(True)
    r.port(5).plug("QSFP28-100G-DAC")  # spare: seated, admin-down
    return r


class TestCapture:
    def test_router_inventory(self, router):
        inventory = RouterInventory.capture(router)
        assert inventory.hostname == "inv-test"
        assert len(inventory.interfaces) == 24
        assert inventory.modules() == {"Eth0/0": "QSFP28-100G-LR4",
                                       "Eth0/5": "QSFP28-100G-DAC"}

    def test_spares_identified(self, router):
        inventory = RouterInventory.capture(router)
        spares = inventory.spare_modules()
        assert [s.name for s in spares] == ["Eth0/5"]

    def test_fleet_capture(self, small_fleet):
        fleet = FleetInventory.capture(small_fleet)
        assert len(fleet) == len(small_fleet.routers)
        assert fleet.total_modules() > 50

    def test_module_census(self, small_fleet):
        census = FleetInventory.capture(small_fleet).module_census()
        assert sum(census.values()) > 0
        assert all(count > 0 for count in census.values())


class TestRoundTrip:
    def test_json_round_trip(self, small_fleet):
        fleet = FleetInventory.capture(small_fleet)
        restored = FleetInventory.from_json(fleet.to_json())
        assert set(restored.routers) == set(fleet.routers)
        host = sorted(fleet.routers)[0]
        assert restored.routers[host].modules() \
            == fleet.routers[host].modules()
        assert restored.module_census() == fleet.module_census()


class TestDiff:
    def test_no_change(self, router):
        a = FleetInventory(routers={"inv-test":
                                    RouterInventory.capture(router)})
        b = FleetInventory(routers={"inv-test":
                                    RouterInventory.capture(router)})
        assert diff_inventories(a, b) == []

    def test_removal_and_addition(self, router):
        before = FleetInventory(routers={"inv-test":
                                         RouterInventory.capture(router)})
        router.port(0).unplug()                  # the "Oct 9" removal
        router.port(7).plug("QSFP28-100G-SR4")   # the "Oct 31" addition
        after = FleetInventory(routers={"inv-test":
                                        RouterInventory.capture(router)})
        changes = diff_inventories(before, after)
        kinds = {(c.interface, c.kind) for c in changes}
        assert ("Eth0/0", "removed") in kinds
        assert ("Eth0/7", "added") in kinds

    def test_module_swap_is_changed(self, router):
        before = FleetInventory(routers={"inv-test":
                                         RouterInventory.capture(router)})
        router.port(0).unplug()
        router.port(0).plug("QSFP28-100G-SR4")
        after = FleetInventory(routers={"inv-test":
                                        RouterInventory.capture(router)})
        changes = diff_inventories(before, after)
        assert len(changes) == 1
        assert changes[0].kind == "changed"
        assert "->" in str(changes[0])

    def test_admin_state_change_is_not_inventory_change(self, router):
        # §7: taking a port down does not unplug the module -- the
        # inventory (and its power cost) is unchanged.
        before = FleetInventory(routers={"inv-test":
                                         RouterInventory.capture(router)})
        router.port(0).set_admin(False)
        after = FleetInventory(routers={"inv-test":
                                        RouterInventory.capture(router)})
        assert diff_inventories(before, after) == []

    def test_str_rendering(self):
        added = InventoryChange("h", "Eth0/1", "added", after="X")
        removed = InventoryChange("h", "Eth0/1", "removed", before="Y")
        assert "+ X" in str(added)
        assert "- Y" in str(removed)
