"""End-to-end fleet monitoring: §6.2 parity, alerts, determinism.

The acceptance criteria of the monitoring subsystem:

* the live per-router model-vs-Autopower drift must report the same
  constant offset (within 1 %) as the offline §6.2 comparison over the
  identical run;
* an injected PSU-efficiency degradation raises exactly one
  (deduplicated) ``psu-efficiency-drop`` alert;
* attaching the monitor leaves the seeded simulation outputs
  byte-identical;
* the dashboard snapshot is byte-identical across same-seed runs, with
  the obs registry installed or not, and validates against the
  checked-in schema.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import units
from repro.core import derive_power_model
from repro.hardware import VirtualRouter, connect, router_spec
from repro.lab import ExperimentPlan, Orchestrator
from repro.monitor import FleetMonitor, build_snapshot, snapshot_json
from repro.monitor.schema import validate as validate_schema
from repro.network import (DegradePsu, FleetConfig, FleetTrafficModel,
                           NetworkSimulation, build_switch_like_network)
from repro.obs import metrics, tracing
from repro.telemetry.snmp import SnmpCollector
from repro.telemetry.sources import CounterRateModelSource
from repro.validation.compare import compare_series, predict_from_trace

SEED = 7
STEP_S = 900.0
DURATION_S = units.days(0.5)

SMALL = FleetConfig(
    model_counts=(("8201-32FH", 1), ("NCS-55A1-24H", 2),
                  ("ASR-920-24SZ-M", 2)),
    n_regional_pops=1, core_core_links=1)


def _lab_model(device, trx_names, seed):
    rng = np.random.default_rng(seed)
    dut = VirtualRouter(router_spec(device), rng=rng, noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    suites = [orchestrator.run_suite(ExperimentPlan(
        trx_name=trx, n_pairs_values=(1, 2, 4),
        rates_gbps=(10, 50, 100), packet_sizes=(256, 1500),
        measure_duration_s=10, settle_time_s=1))
        for trx in trx_names]
    model, _ = derive_power_model(suites)
    return model


@pytest.fixture(scope="module")
def models():
    return {
        "8201-32FH": _lab_model(
            "8201-32FH", ("QSFP-DD-400G-FR4", "QSFP-DD-400G-LR4",
                          "QSFP-DD-400G-DAC", "QSFP28-100G-LR4"),
            SEED + 10),
        "NCS-55A1-24H": _lab_model(
            "NCS-55A1-24H", ("QSFP28-100G-DAC", "QSFP28-100G-LR4",
                             "QSFP28-100G-SR4"), SEED + 11),
    }


def _build_sim(seed=SEED):
    network = build_switch_like_network(
        SMALL, rng=np.random.default_rng(seed))
    targets = {}
    for model_name in ("8201-32FH", "NCS-55A1-24H"):
        targets[model_name] = next(
            h for h in sorted(network.routers)
            if network.routers[h].model_name == model_name)
    traffic = FleetTrafficModel(
        network, rng=np.random.default_rng(seed + 1),
        mean_external_utilisation=0.05, internal_utilisation_scale=6.0)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(seed + 2))
    for hostname in targets.values():
        sim.deploy_autopower(hostname)
    return sim, targets


def _run_monitored(models, engine, seed=SEED, inject=False):
    sim, targets = _build_sim(seed)
    monitor = FleetMonitor(models=models)
    sim.add_observer(monitor)
    events = []
    if inject:
        events.append(DegradePsu(
            at_s=DURATION_S / 2, hostname=targets["8201-32FH"],
            psu_index=0, efficiency_delta=-0.05))
    result = sim.run(duration_s=DURATION_S, step_s=STEP_S, events=events,
                     detailed_hosts=sorted(targets.values()),
                     engine=engine)
    return monitor, result, targets


@pytest.fixture(scope="module")
def vector_run(models):
    return _run_monitored(models, "vector")


@pytest.fixture(scope="module")
def object_run(models):
    return _run_monitored(models, "object")


class TestOfflineParity:
    """The live drift offset == the offline §6.2 offset (within 1 %)."""

    def _check(self, run, models):
        monitor, result, targets = run
        checked = 0
        for model_name, host in targets.items():
            offline = compare_series(
                predict_from_trace(models[model_name], result.snmp[host]),
                result.autopower[host])
            live = monitor.drift[host].estimate()
            assert live is not None, f"no drift estimate for {host}"
            tolerance = 0.01 * max(1.0, abs(offline.offset_w))
            assert abs(live.offset_w - offline.offset_w) <= tolerance, (
                f"{host}: live offset {live.offset_w} vs offline "
                f"{offline.offset_w}")
            assert live.stats.n_samples == offline.n_samples
            assert live.verdict() == offline.verdict().name
            checked += 1
        assert checked == 2

    def test_vector_engine(self, vector_run, models):
        self._check(vector_run, models)

    def test_object_engine(self, object_run, models):
        self._check(object_run, models)

    def test_live_model_series_matches_offline_prediction(
            self, vector_run, models):
        """The streaming prediction equals the offline pipeline's."""
        monitor, result, targets = vector_run
        for model_name, host in targets.items():
            offline = predict_from_trace(models[model_name],
                                         result.snmp[host])
            live = monitor.store.get(f"model_power_w/{host}").raw.series()
            assert len(live) == len(offline)
            np.testing.assert_allclose(live.values, offline.values,
                                       rtol=1e-9, atol=1e-9)

    def test_live_autopower_ring_matches_result(self, vector_run):
        monitor, result, targets = vector_run
        for host in targets.values():
            ring = monitor.store.get(f"autopower_w/{host}").raw.series()
            np.testing.assert_array_equal(ring.values,
                                          result.autopower[host].values)


class TestInjectedPsuFault:
    @pytest.mark.parametrize("engine", ["vector", "object"])
    def test_exactly_one_deduplicated_alert(self, models, engine):
        monitor, _result, targets = _run_monitored(models, engine,
                                                   inject=True)
        target = targets["8201-32FH"]
        fired = [a for a in monitor.alerts.alerts
                 if a.rule == "psu-efficiency-drop"]
        assert len(fired) == 1, (
            f"expected exactly one psu-efficiency-drop alert, got "
            f"{[(a.rule, a.signal, a.fired_at_s) for a in fired]}")
        alert = fired[0]
        assert alert.signal == f"psu_efficiency_drop/{target}/psu0"
        assert alert.severity.value == "critical"
        assert alert.active                       # never falsely resolved
        assert alert.fired_at_s >= DURATION_S / 2
        assert alert.value > 0.02                 # the rule's bound

    def test_no_fault_no_psu_alert(self, vector_run):
        monitor, _, _ = vector_run
        assert not [a for a in monitor.alerts.alerts
                    if a.rule == "psu-efficiency-drop"]


class TestMonitorIsNonPerturbing:
    @pytest.mark.parametrize("engine", ["vector", "object"])
    def test_simulation_outputs_unchanged(self, models, engine):
        sim_bare, targets = _build_sim()
        bare = sim_bare.run(duration_s=DURATION_S, step_s=STEP_S,
                            detailed_hosts=sorted(targets.values()),
                            engine=engine)
        monitored = _run_monitored(models, engine)[1]
        np.testing.assert_array_equal(bare.total_power.values,
                                      monitored.total_power.values)
        np.testing.assert_array_equal(bare.total_traffic_bps.values,
                                      monitored.total_traffic_bps.values)
        for host in bare.autopower:
            np.testing.assert_array_equal(
                bare.autopower[host].values,
                monitored.autopower[host].values)


class TestDashboardDeterminism:
    def _alert_key(self, monitor):
        return [(a.rule, a.signal, a.fired_at_s, a.resolved_at_s, a.value)
                for a in monitor.alerts.alerts]

    @pytest.mark.parametrize("engine", ["vector", "object"])
    def test_same_seed_byte_identical_snapshot(self, models, engine):
        first = _run_monitored(models, engine)
        second = _run_monitored(models, engine)
        assert snapshot_json(build_snapshot(first[0])) == \
            snapshot_json(build_snapshot(second[0]))
        assert self._alert_key(first[0]) == self._alert_key(second[0])

    def test_obs_registry_does_not_change_snapshot(self, models,
                                                   vector_run):
        baseline = snapshot_json(build_snapshot(vector_run[0]))
        with metrics.use_registry(metrics.MetricsRegistry()):
            with tracing.use_tracer(tracing.Tracer()):
                observed = _run_monitored(models, "vector")
        assert snapshot_json(build_snapshot(observed[0])) == baseline
        assert self._alert_key(observed[0]) == \
            self._alert_key(vector_run[0])

    def test_monitor_metrics_are_published(self, models):
        registry = metrics.MetricsRegistry()
        with metrics.use_registry(registry):
            monitor, _, _ = _run_monitored(models, "vector")
        samples = registry.get("netpower_monitor_rollup_samples_total")
        assert samples.default().value > 0


class TestDashboardSchema:
    def test_snapshot_validates_against_checked_in_schema(self,
                                                          vector_run):
        snapshot = json.loads(snapshot_json(build_snapshot(
            vector_run[0])))
        schema_path = (Path(__file__).resolve().parent.parent / "docs"
                       / "schemas" / "dashboard.schema.json")
        schema = json.loads(schema_path.read_text())
        errors = validate_schema(snapshot, schema)
        assert errors == [], "\n".join(errors)

    def test_validator_rejects_corrupted_snapshot(self, vector_run):
        snapshot = json.loads(snapshot_json(build_snapshot(
            vector_run[0])))
        schema_path = (Path(__file__).resolve().parent.parent / "docs"
                       / "schemas" / "dashboard.schema.json")
        schema = json.loads(schema_path.read_text())
        snapshot["schema"] = "wrong/v0"
        del snapshot["scenario"]["engine"]
        snapshot["alerts"] = [{"rule": 5}]
        errors = validate_schema(snapshot, schema)
        assert len(errors) >= 3


class TestLiveModuleSwap:
    def test_in_place_trx_swap_updates_the_live_prediction(self, models):
        # Regression: the live source's fast path compared interface
        # names only, so swapping a module in place (same name, new
        # transceiver) kept predicting with the old module's curve.
        router = VirtualRouter(router_spec("NCS-55A1-24H"),
                               hostname="swap-ncs",
                               rng=np.random.default_rng(99))
        for i in range(2):
            router.port(i).plug("QSFP28-100G-DAC")
            router.port(i).set_admin(True)
        connect(router.port(0), router.port(1))
        router.port(0).offer_traffic(rx_bps=4e9, tx_bps=4e9,
                                     packet_bytes=700)
        collector = SnmpCollector([router])
        for t in (300.0, 600.0):
            router.advance(300)
            collector.record(t)
        source = CounterRateModelSource(collector, models)
        before = source.sample("swap-ncs", 600.0)
        assert before is not None

        router.port(0).unplug()
        router.port(0).plug("QSFP28-100G-LR4")
        router.advance(300)
        collector.record(900.0)
        after = source.sample("swap-ncs", 900.0)
        fresh = CounterRateModelSource(collector, models).sample(
            "swap-ncs", 900.0)
        # The long-lived source must agree with a cache-free one...
        assert after == fresh
        # ...and the swap must actually show (LR4 idles hotter than DAC;
        # the offered traffic is constant, so any change is the module).
        assert after != before
