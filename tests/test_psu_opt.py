"""The §9 PSU optimisation estimates."""

import numpy as np
import pytest

from repro.hardware import EightyPlus
from repro.telemetry.snmp import PsuSensorExport, SnmpCollector
from repro.psu_opt import (
    PsuPoint,
    clean_exports,
    combined_savings,
    efficiency_scatter,
    resize_savings,
    single_psu_savings,
    table3,
    table4,
    total_input_power_w,
    upgrade_savings,
)


def export(router="r1", model="M", idx=0, capacity=1100.0,
           input_w=100.0, output_w=80.0):
    return PsuSensorExport(router=router, router_model=model, psu_index=idx,
                           capacity_w=capacity, input_w=input_w,
                           output_w=output_w)


@pytest.fixture(scope="module")
def fleet_points(fleet):
    collector = SnmpCollector(list(fleet.routers.values()),
                              detailed_hosts=[])
    return clean_exports(collector.sensor_exports())


class TestCleaning:
    def test_caps_impossible_efficiency(self):
        points = clean_exports([export(input_w=80, output_w=100)])
        assert points[0].efficiency == 1.0
        assert points[0].input_w == 100.0  # made consistent

    def test_drops_dead_psus(self):
        points = clean_exports([export(output_w=0.0),
                                export(input_w=0.0, output_w=10)])
        assert points == []

    def test_load_fraction(self):
        points = clean_exports([export(capacity=1000, output_w=150)])
        assert points[0].load_fraction == pytest.approx(0.15)


class TestUpgradeSavings:
    def test_monotone_in_standard(self, fleet_points):
        fractions = [upgrade_savings(fleet_points, std).fraction
                     for std in EightyPlus]
        assert fractions == sorted(fractions)

    def test_papers_band(self, fleet_points):
        # Table 3: Bronze 2 %, Platinum 5 %, Titanium 7 % -- we assert
        # the same regime (low single digits rising to high single digits).
        bronze = upgrade_savings(fleet_points, EightyPlus.BRONZE).fraction
        platinum = upgrade_savings(fleet_points, EightyPlus.PLATINUM).fraction
        titanium = upgrade_savings(fleet_points, EightyPlus.TITANIUM).fraction
        assert 0.0 <= bronze < 0.05
        assert 0.01 < platinum < 0.09
        assert platinum < titanium < 0.13

    def test_never_penalises(self):
        # Already-excellent PSUs are left alone.
        points = clean_exports([export(input_w=82, output_w=80,
                                       capacity=160)])
        result = upgrade_savings(points, EightyPlus.BRONZE)
        assert result.saved_w == 0.0


class TestSinglePsu:
    def test_positive_at_low_loads(self, fleet_points):
        result = single_psu_savings(fleet_points)
        # §9.3.4: consolidation helps (paper: 4 %; same regime here).
        assert 0.02 < result.fraction < 0.15

    def test_combined_beats_both_parts(self, fleet_points):
        single = single_psu_savings(fleet_points).fraction
        for std in (EightyPlus.BRONZE, EightyPlus.TITANIUM):
            upgrade = upgrade_savings(fleet_points, std).fraction
            combined = combined_savings(fleet_points, std).fraction
            assert combined >= single - 1e-9
            assert combined >= upgrade - 1e-9

    def test_combined_monotone_in_standard(self, fleet_points):
        fractions = [combined_savings(fleet_points, std).fraction
                     for std in EightyPlus]
        assert fractions == sorted(fractions)

    def test_two_identical_psus_halve_input(self):
        # Hand-computable case: consolidation moves one PSU to 2x load.
        points = clean_exports([
            export(idx=0, capacity=1000, input_w=125, output_w=100),
            export(idx=1, capacity=1000, input_w=125, output_w=100)])
        result = single_psu_savings(points)
        carrier = points[0]
        new_eff = carrier.offset_curve().efficiency(0.2)
        expected = 250 - 200 / new_eff
        assert result.saved_w == pytest.approx(expected, rel=1e-6)


class TestResize:
    def test_table4_shape(self, fleet_points):
        table = table4(fleet_points)
        for k in (1.0, 2.0):
            fractions = [table[k][float(c)].fraction
                         for c in (250, 400, 750, 1100, 2000, 2700)]
            # Savings fall monotonically with the capacity floor...
            assert fractions == sorted(fractions, reverse=True)
            # ...positive for small floors, negative for huge ones.
            assert fractions[0] > 0
            assert fractions[-1] < 0

    def test_k1_at_least_k2(self, fleet_points):
        table = table4(fleet_points)
        assert table[1.0][250.0].fraction >= table[2.0][250.0].fraction - 1e-9

    def test_k_validation(self, fleet_points):
        with pytest.raises(ValueError):
            resize_savings(fleet_points, 0, 250)


class TestTable3Builder:
    def test_structure(self, fleet_points):
        table = table3(fleet_points)
        assert set(table) == {"upgrade", "single_psu", "combined"}
        assert set(table["upgrade"]) == {s.value for s in EightyPlus}
        assert set(table["combined"]) == {s.value for s in EightyPlus}


class TestScatter:
    def test_fleet_scatter_matches_fig6(self, fleet_points):
        loads, effs = efficiency_scatter(fleet_points)
        # Fig. 6: loads low (5-20 %), efficiencies very good to very poor.
        assert 2 < np.mean(loads) < 20
        assert effs.min() < 0.7
        assert effs.max() > 0.9

    def test_per_model_filter(self, fleet_points):
        loads_all, _ = efficiency_scatter(fleet_points)
        loads_one, effs_one = efficiency_scatter(fleet_points,
                                                 "NCS-55A1-24H")
        assert 0 < len(loads_one) < len(loads_all)
        # Fig. 6b: the NCS-55A1-24H fares well.
        assert np.median(effs_one) > 0.8

    def test_8201_fares_poorly(self, fleet_points):
        _, effs = efficiency_scatter(fleet_points, "8201-32FH")
        # Fig. 6c: 76 % or worse.
        assert np.median(effs) < 0.8

    def test_asr920_spans_wide_range(self, fleet_points):
        _, effs = efficiency_scatter(fleet_points, "ASR-920-24SZ-M")
        # Fig. 6d: the full spectrum within one model.
        assert effs.max() - effs.min() > 0.2

    def test_total_input_power(self, fleet_points):
        assert total_input_power_w(fleet_points) > 10_000
