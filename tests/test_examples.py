"""Smoke tests: the example scripts must run end to end.

The examples double as documentation; a stale example is worse than no
example.  Each runs in-process via runpy (fast ones only -- the heavier
fleet walkthroughs are exercised by the benchmarks instead).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    sys.argv = [name]
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Fitted power model" in out
        assert "P_base" in out
        assert "dynamic" in out

    def test_datasheet_pipeline(self, capsys):
        out = run_example("datasheet_pipeline.py", capsys)
        assert "% recovered" in out
        assert "UNDERESTIMATES" in out

    def test_modular_chassis(self, capsys):
        out = run_example("modular_chassis.py", capsys)
        assert "P_chassis" in out
        assert "LC-8X100GE" in out
        assert "Prediction error" in out

    def test_sleep_policy_sweep(self, capsys):
        out = run_example("sleep_policy_sweep.py", capsys)
        assert "hypnos-aggressive" in out
        assert "Report is deterministic" in out

    def test_all_examples_have_docstrings_and_main(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            text = script.read_text()
            assert text.startswith("#!/usr/bin/env python"), script.name
            assert '"""' in text, script.name
            assert 'if __name__ == "__main__":' in text, script.name
