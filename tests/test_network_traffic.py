"""Diurnal demand processes and the routed traffic matrix."""

import numpy as np
import pytest

from repro import units
from repro.network.traffic import (
    Demand,
    DiurnalProfile,
    FleetTrafficModel,
    TrafficMatrix,
)


class TestDiurnalProfile:
    def test_peak_at_peak_hour(self):
        profile = DiurnalProfile(peak_hour=15.0)
        peak = profile.multiplier(units.hours(15))
        night = profile.multiplier(units.hours(3))
        assert peak > 1.5 * night

    def test_weekend_reduced(self):
        profile = DiurnalProfile()
        weekday_noon = profile.multiplier(units.days(1) + units.hours(15))
        saturday_noon = profile.multiplier(units.days(5) + units.hours(15))
        assert saturday_noon == pytest.approx(
            weekday_noon * profile.weekend_factor)

    def test_vectorised_matches_scalar(self):
        profile = DiurnalProfile()
        times = np.linspace(0, units.days(7), 200)
        vector = profile.multipliers(times)
        scalars = [profile.multiplier(t) for t in times]
        np.testing.assert_allclose(vector, scalars, rtol=1e-12)

    def test_positive_everywhere(self):
        profile = DiurnalProfile()
        times = np.linspace(0, units.days(14), 500)
        assert np.all(profile.multipliers(times) > 0)


class TestTrafficMatrix:
    @pytest.fixture
    def matrix(self, small_fleet, rng):
        hosts = sorted(small_fleet.routers)
        demands = [Demand(src=hosts[i], dst=hosts[-(i + 1)], base_bps=1e9)
                   for i in range(5)]
        return TrafficMatrix(small_fleet, demands)

    def test_all_demands_routed(self, matrix):
        assert all(path is not None for path in matrix.paths)

    def test_loads_conserve_demand(self, matrix):
        loads = matrix.base_link_loads()
        total_hops = sum(len(p) for p in matrix.paths)
        assert sum(loads.values()) == pytest.approx(total_hops * 1e9)

    def test_utilisations_low(self, matrix):
        utils = matrix.utilisations()
        assert max(utils.values()) < 0.5

    def test_reroute_without_moves_affected_demands(self, matrix):
        loads = matrix.base_link_loads()
        used = [lid for lid, load in loads.items() if load > 0]
        removed = {used[0]}
        rerouted = matrix.reroute_without(removed)
        new_loads = rerouted.base_link_loads()
        assert used[0] not in new_loads
        # Demand volume is conserved (paths may lengthen).
        assert sum(1 for p in rerouted.paths if p) == len(matrix.demands)

    def test_reroute_keeps_unaffected_paths(self, matrix):
        loads = matrix.base_link_loads()
        unused = [lid for lid, load in loads.items() if load == 0]
        if not unused:
            pytest.skip("all links carry traffic in this layout")
        rerouted = matrix.reroute_without({unused[0]})
        assert rerouted.paths == matrix.paths

    def test_demand_validation(self):
        with pytest.raises(ValueError):
            Demand(src="a", dst="b", base_bps=-1)


class TestFleetTrafficModel:
    @pytest.fixture
    def model(self, small_fleet, rng):
        return FleetTrafficModel(small_fleet, rng=rng, n_demands=100)

    def test_every_external_link_has_a_demand(self, model, small_fleet):
        rates = model.external_rates_at(units.hours(15))
        assert set(rates) == {l.link_id for l in small_fleet.external_links()}

    def test_rates_respect_capacity(self, model, small_fleet):
        links = {l.link_id: l for l in small_fleet.links}
        for t in (0.0, units.hours(12), units.days(3)):
            for link_id, rate in model.external_rates_at(t).items():
                cap = units.gbps_to_bps(links[link_id].speed_gbps)
                assert rate <= 0.96 * cap

    def test_diurnal_swing_visible(self, model):
        model.rng = np.random.default_rng(5)  # fix noise
        day = sum(model.external_rates_at(units.hours(15)).values())
        night = sum(model.external_rates_at(units.hours(3)).values())
        assert day > 1.3 * night

    def test_internal_loads_cover_used_links(self, model, small_fleet):
        rates = model.internal_rates_at(units.hours(12))
        assert set(rates) == {l.link_id
                              for l in small_fleet.internal_links()}
        assert sum(rates.values()) > 0

    def test_mean_utilisation_low(self, model, small_fleet):
        # Fig. 1: the network runs at a few percent utilisation at most.
        links = {l.link_id: l for l in small_fleet.external_links()}
        rates = model.external_rates_at(units.hours(15))
        utils = [rate / units.gbps_to_bps(links[lid].speed_gbps)
                 for lid, rate in rates.items()]
        assert np.mean(utils) < 0.15
