"""Units and conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestEnergyConversions:
    def test_pj_round_trip(self):
        assert units.joules_to_pj(units.pj_to_joules(22.0)) == pytest.approx(22.0)

    def test_nj_round_trip(self):
        assert units.joules_to_nj(units.nj_to_joules(58.0)) == pytest.approx(58.0)

    def test_paper_scale_values(self):
        # 5 pJ/bit at 100 Gbps is 0.5 W (§7's arithmetic).
        power = units.pj_to_joules(5.0) * units.gbps_to_bps(100)
        assert power == pytest.approx(0.5)


class TestRateConversions:
    def test_gbps(self):
        assert units.gbps_to_bps(100) == 100e9
        assert units.bps_to_gbps(2.5e9) == pytest.approx(2.5)

    def test_tbps(self):
        assert units.tbps_to_bps(1.3) == pytest.approx(1.3e12)
        assert units.bps_to_tbps(1.3e12) == pytest.approx(1.3)


class TestPacketRate:
    def test_known_value_1500b(self):
        # 100 Gbps of 1500 B packets with 38 B of wire overhead:
        # 100e9 / (8 * 1538) ≈ 8.13 Mpps.
        pps = units.packet_rate(100e9, 1500)
        assert pps == pytest.approx(100e9 / (8 * 1538))

    def test_64b_packets_much_denser(self):
        assert (units.packet_rate(100e9, 64)
                > 10 * units.packet_rate(100e9, 1500))

    def test_zero_packet_size_rejected(self):
        with pytest.raises(ValueError):
            units.packet_rate(1e9, 0)
        with pytest.raises(ValueError):
            units.bit_rate(1e6, -3)

    @given(st.floats(min_value=1e3, max_value=4e11),
           st.floats(min_value=64, max_value=9000))
    def test_bit_rate_inverts_packet_rate(self, rate, size):
        assert units.bit_rate(units.packet_rate(rate, size), size) \
            == pytest.approx(rate, rel=1e-9)

    def test_custom_header_size(self):
        assert units.packet_rate(8e9, 100, header_bytes=0) \
            == pytest.approx(1e7)


class TestEfficiencyMetric:
    def test_watts_per_100g(self):
        # 600 W at 2.4 Tbps = 25 W per 100 Gbps.
        assert units.watts_per_100g(600, units.gbps_to_bps(2400)) \
            == pytest.approx(25.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            units.watts_per_100g(100, 0)


class TestTimeHelpers:
    def test_days_hours_minutes(self):
        assert units.days(1) == 86400
        assert units.hours(2) == 7200
        assert units.minutes(5) == units.SNMP_POLL_PERIOD_S

    def test_kwh(self):
        # 1 kW for an hour is one kWh.
        assert units.kwh(1000, 3600) == pytest.approx(1.0)


class TestRelativeError:
    def test_signs(self):
        assert units.relative_error(110, 100) == pytest.approx(0.1)
        assert units.relative_error(90, 100) == pytest.approx(-0.1)

    def test_zero_truth(self):
        assert units.relative_error(0, 0) == 0.0
        assert math.isinf(units.relative_error(1, 0))
