"""The incremental check cache: warm runs must be invisible."""

import json
import textwrap

import pytest

from repro.analysis import (CheckConfig, check_paths, check_paths_cached,
                            render_json)


def src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


@pytest.fixture
def tree(tmp_path):
    """A small project with a cross-module taint flow."""
    package = tmp_path / "repro"
    (package / "obs").mkdir(parents=True)
    (package / "core").mkdir()
    (package / "obs" / "clockutil.py").write_text(src('''
        """Clock helper."""
        import time


        def now_ms() -> float:
            """Now."""
            return time.time() * 1e3
        '''))
    (package / "core" / "model.py").write_text(src('''
        """Core model."""
        from repro.obs.clockutil import now_ms


        def predict() -> float:
            """Predict."""
            return now_ms()
        '''))
    return tmp_path


def run(tree, tmp_path, **kwargs):
    return check_paths_cached([tree], cache_file=tmp_path / "cache.json",
                              **kwargs)


class TestWarmVsCold:
    def test_warm_run_is_byte_identical(self, tree, tmp_path):
        cold, cold_warm = run(tree, tmp_path)
        warm, warm_warm = run(tree, tmp_path)
        assert not cold_warm
        assert warm_warm
        assert render_json(cold) == render_json(warm)
        # The cold run found the cross-module flow; the warm run must
        # reproduce it from the cache without running any rule.
        assert any(f.rule_id == "NP-FLOW-001" for f in warm.findings)

    def test_cache_file_is_byte_stable(self, tree, tmp_path):
        run(tree, tmp_path)
        first = (tmp_path / "cache.json").read_bytes()
        run(tree, tmp_path)
        assert (tmp_path / "cache.json").read_bytes() == first

    def test_matches_uncached_check_paths(self, tree, tmp_path):
        cached, _ = run(tree, tmp_path)
        plain = check_paths([tree])
        assert render_json(cached) == render_json(plain)


class TestInvalidation:
    def test_dependency_edit_invalidates_the_importer(self, tree,
                                                      tmp_path):
        run(tree, tmp_path)
        # Remove the taint source: the importer's own bytes are
        # untouched, but its dependency closure changed, so its cached
        # graph-rule findings must not be replayed.
        (tree / "repro" / "obs" / "clockutil.py").write_text(src('''
            """Clock helper."""


            def now_ms() -> float:
                """Now (fixed)."""
                return 0.0
            '''))
        result, warm = run(tree, tmp_path)
        assert not warm
        assert not any(f.rule_id == "NP-FLOW-001"
                       for f in result.findings)

    def test_new_file_invalidates_the_run(self, tree, tmp_path):
        run(tree, tmp_path)
        (tree / "repro" / "core" / "extra.py").write_text(
            '"""Extra."""\n')
        result, warm = run(tree, tmp_path)
        assert not warm
        assert "core/extra.py" in result.paths

    def test_config_change_invalidates_the_run(self, tree, tmp_path):
        run(tree, tmp_path)
        _result, warm = run(tree, tmp_path,
                            config=CheckConfig(select=("NP-FLOW",)))
        assert not warm

    def test_corrupt_cache_is_tolerated(self, tree, tmp_path):
        run(tree, tmp_path)
        (tmp_path / "cache.json").write_text("{not json")
        result, warm = run(tree, tmp_path)
        assert not warm
        assert any(f.rule_id == "NP-FLOW-001" for f in result.findings)

    def test_cache_payload_is_sorted_json(self, tree, tmp_path):
        run(tree, tmp_path)
        payload = json.loads((tmp_path / "cache.json").read_text())
        files = payload["files"]
        assert list(files) == sorted(files)
        entry = files["core/model.py"]
        # The dependency closure includes the imported helper.
        assert "obs/clockutil.py" in entry["closure"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
