"""Time-series and counter containers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.router import COUNTER_64_WRAP
from repro.telemetry.traces import CounterSeries, InterfaceTrace, TimeSeries


class TestTimeSeriesBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(np.array([1, 2]), np.array([1, 2, 3]))
        with pytest.raises(ValueError, match="increasing"):
            TimeSeries(np.array([2.0, 1.0]), np.array([1.0, 2.0]))

    def test_stats_ignore_nan(self):
        ts = TimeSeries(np.arange(5.0), np.array([1, np.nan, 3, np.nan, 5]))
        assert ts.mean() == pytest.approx(3.0)
        assert ts.median() == pytest.approx(3.0)
        assert len(ts.valid()) == 3

    def test_slice(self):
        ts = TimeSeries(np.arange(10.0), np.arange(10.0))
        part = ts.slice(3, 7)
        np.testing.assert_allclose(part.timestamps, [3, 4, 5, 6])

    def test_from_pairs(self):
        ts = TimeSeries.from_pairs([(0.0, 1.0), (1.0, 2.0)])
        assert len(ts) == 2
        assert len(TimeSeries.from_pairs([])) == 0

    def test_shifted(self):
        ts = TimeSeries(np.arange(3.0), np.ones(3))
        np.testing.assert_allclose(ts.shifted(5).values, 6.0)


class TestResample:
    def test_bin_means(self):
        ts = TimeSeries(np.arange(0, 60, 10.0),
                        np.array([1, 1, 1, 5, 5, 5.0]))
        out = ts.resample(30.0)
        np.testing.assert_allclose(out.values, [1.0, 5.0])
        np.testing.assert_allclose(out.timestamps, [15.0, 45.0])

    def test_empty_bins_are_nan(self):
        ts = TimeSeries(np.array([0.0, 100.0]), np.array([1.0, 2.0]))
        out = ts.resample(10.0)
        assert np.isnan(out.values[5])
        assert out.values[0] == 1.0

    def test_mean_preserved_on_uniform_grid(self):
        rng = np.random.default_rng(0)
        ts = TimeSeries(np.arange(0, 600, 1.0), rng.normal(10, 1, 600))
        out = ts.resample(60.0)
        assert out.mean() == pytest.approx(ts.mean(), rel=1e-6)

    def test_invalid_period(self):
        ts = TimeSeries(np.arange(3.0), np.ones(3))
        with pytest.raises(ValueError):
            ts.resample(0)


class TestAlign:
    def test_interpolates(self):
        ts = TimeSeries(np.array([0.0, 10.0]), np.array([0.0, 10.0]))
        out = ts.align_to(np.array([5.0]))
        assert out.values[0] == pytest.approx(5.0)

    def test_gap_masking(self):
        ts = TimeSeries(np.array([0.0, 100.0]), np.array([1.0, 1.0]))
        out = ts.align_to(np.array([50.0]), max_gap_s=10.0)
        assert np.isnan(out.values[0])

    def test_outside_range_is_nan(self):
        ts = TimeSeries(np.array([10.0, 20.0]), np.array([1.0, 2.0]))
        out = ts.align_to(np.array([0.0, 30.0]))
        assert np.isnan(out.values).all()


class TestCounterRates:
    def test_simple_rates(self):
        cs = CounterSeries(np.array([0.0, 10.0, 20.0]),
                           np.array([0, 1000, 3000], dtype=np.uint64))
        rates = cs.rates()
        np.testing.assert_allclose(rates.values, [100.0, 200.0])
        np.testing.assert_allclose(rates.timestamps, [10.0, 20.0])

    def test_wrap_recovered(self):
        near_wrap = COUNTER_64_WRAP - 500
        cs = CounterSeries(np.array([0.0, 10.0]),
                           np.array([near_wrap, 500], dtype=np.uint64))
        rates = cs.rates()
        assert rates.values[0] == pytest.approx(100.0)

    def test_reset_yields_nan(self):
        # A reboot: counter falls back to near zero; the wrap-corrected
        # delta is implausibly huge and must be dropped.
        cs = CounterSeries(np.array([0.0, 10.0, 20.0]),
                           np.array([10_000_000, 20_000_000, 3],
                                    dtype=np.uint64))
        rates = cs.rates()
        assert rates.values[0] == pytest.approx(1e6)
        assert np.isnan(rates.values[1])

    def test_too_short(self):
        cs = CounterSeries(np.array([0.0]), np.array([1], dtype=np.uint64))
        assert len(cs.rates()) == 0

    @given(st.lists(st.integers(min_value=0, max_value=10**15),
                    min_size=2, max_size=20))
    @settings(max_examples=50)
    def test_rates_of_cumsum_are_nonnegative(self, increments):
        counts = np.cumsum(np.array(increments, dtype=np.uint64))
        ts = np.arange(len(counts), dtype=float) * 10
        rates = CounterSeries(ts, counts).rates()
        finite = rates.values[~np.isnan(rates.values)]
        assert np.all(finite >= 0)


class TestInterfaceTrace:
    def _trace(self, octets, packets):
        ts = np.arange(len(octets), dtype=float) * 300
        return InterfaceTrace(
            name="Eth0/0",
            rx_octets=CounterSeries(ts, np.array(octets, dtype=np.uint64)),
            tx_octets=CounterSeries(ts, np.array(octets, dtype=np.uint64)),
            rx_packets=CounterSeries(ts, np.array(packets, dtype=np.uint64)),
            tx_packets=CounterSeries(ts, np.array(packets, dtype=np.uint64)))

    def test_active_detection(self):
        active = self._trace([0, 1000, 2000], [0, 10, 20])
        silent = self._trace([5, 5, 5], [1, 1, 1])
        assert active.is_active()
        assert not silent.is_active()

    def test_rates_shapes(self):
        trace = self._trace([0, 3000, 6000], [0, 30, 60])
        rx, tx = trace.octet_rates()
        assert rx.values[0] == pytest.approx(10.0)
        prx, ptx = trace.packet_rates()
        assert prx.values[0] == pytest.approx(0.1)
