"""Structured logging: formatters, subsystem tree, stream proxying."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs.logging import (
    ConsoleFormatter,
    JsonLinesFormatter,
    StreamProxyHandler,
    configure,
    configure_reporter,
    get_logger,
)


@pytest.fixture(autouse=True)
def _reset_repro_root():
    """Strip any handler configure() installed so tests stay isolated."""
    yield
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


def _record(message="hello", level=logging.INFO, extra=None):
    logger = logging.Logger("repro.test")
    record = logger.makeRecord(
        "repro.test", level, __file__, 1, message, (), None,
        extra=extra or {})
    return record


class TestFormatters:
    def test_json_lines_carries_extras(self):
        line = JsonLinesFormatter().format(
            _record(extra={"engine": "vector", "steps": 12}))
        doc = json.loads(line)
        assert doc["message"] == "hello"
        assert doc["level"] == "info"
        assert doc["logger"] == "repro.test"
        assert doc["engine"] == "vector"
        assert doc["steps"] == 12
        assert isinstance(doc["ts"], float)

    def test_console_formatter_prefixes(self):
        line = ConsoleFormatter().format(_record())
        assert line.endswith("repro.test: hello")
        assert "info" in line

    def test_console_formatter_renders_extras(self):
        line = ConsoleFormatter().format(_record(extra={"n": 3}))
        assert line.endswith("hello [n=3]")

    def test_bare_formatter_is_verbatim(self):
        assert ConsoleFormatter(bare=True).format(_record()) == "hello"


class TestLoggerTree:
    def test_subsystem_loggers_parent_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("network.sim").name == "repro.network.sim"
        assert get_logger("repro.lab").name == "repro.lab"
        # Once the intermediate logger exists the chain connects.
        get_logger("network")
        assert get_logger("network.sim").parent.name == "repro.network"

    def test_configure_level_filters_tree(self, capsys):
        configure(level="error")
        get_logger("network.sim").warning("hidden")
        get_logger("network.sim").error("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err
        assert "shown" in err

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure(level="loud")

    def test_configure_is_idempotent(self, capsys):
        configure(level="warning")
        configure(level="warning")
        get_logger("x").warning("once")
        assert capsys.readouterr().err.count("once") == 1

    def test_json_mode_emits_parseable_lines(self, capsys):
        configure(level="info", json_mode=True)
        get_logger("core").info("structured", extra={"r2": 0.99})
        line = capsys.readouterr().err.strip().splitlines()[-1]
        doc = json.loads(line)
        assert doc["message"] == "structured"
        assert doc["r2"] == 0.99


class TestStreamProxy:
    def test_emit_resolves_stream_lazily(self, capsys):
        # The handler must write to whatever sys.stdout is at emit time
        # (capsys swaps it), not the stream captured at configure time.
        handler = StreamProxyHandler("stdout")
        handler.setFormatter(ConsoleFormatter(bare=True))
        logger = logging.Logger("proxy-test")
        logger.addHandler(handler)
        logger.warning("through-proxy")
        assert capsys.readouterr().out == "through-proxy\n"

    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError):
            StreamProxyHandler("stdlog")


class TestReporters:
    def test_reporter_prints_bare_to_stdout(self, capsys):
        logger = configure_reporter("netpower.test.report", "stdout")
        logger.info("routers            : 107")
        assert capsys.readouterr().out == "routers            : 107\n"

    def test_reporter_json_mode(self, capsys):
        logger = configure_reporter("netpower.test.report2", "stdout",
                                    json_mode=True)
        logger.info("report line")
        doc = json.loads(capsys.readouterr().out)
        assert doc["message"] == "report line"
