"""The CLI observability flags: exports, JSON output, determinism."""

from __future__ import annotations

import json

from repro.cli import main


def _audit(extra_args, capsys):
    code = main(["audit", "--days", "0.25", "--seed", "7"] + extra_args)
    assert code == 0
    return capsys.readouterr()


class TestMetricsOut:
    def test_audit_writes_prometheus_file(self, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        _audit(["--metrics-out", str(target)], capsys)
        text = target.read_text()
        names = {line.split()[2] for line in text.splitlines()
                 if line.startswith("# TYPE ")}
        # The audit spans simulation, Autopower, derivation, and the PSU
        # analyses; the acceptance floor is 15 distinct metric names.
        assert len(names) >= 15
        for name in ("netpower_sim_steps_total",
                     "netpower_sim_step_seconds",
                     "netpower_autopower_samples_uploaded_total",
                     "netpower_derivation_fit_r_squared",
                     "netpower_psu_savings_watts",
                     "netpower_cli_commands_total"):
            assert name in names, name
        assert 'netpower_cli_commands_total{command="audit"} 1' in text

    def test_json_snapshot_extension(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        _audit(["--metrics-out", str(target)], capsys)
        doc = json.loads(target.read_text())
        assert "netpower_sim_steps_total" in doc["metrics"]

    def test_metrics_disabled_after_run(self, tmp_path, capsys):
        from repro.obs import metrics
        _audit(["--metrics-out", str(tmp_path / "m.prom")], capsys)
        assert metrics.get_registry() is None


class TestTraceOut:
    def test_audit_writes_nested_span_tree(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        _audit(["--trace-out", str(target)], capsys)
        doc = json.loads(target.read_text())
        root = doc["spans"][0]
        assert root["name"] == "cli.audit"

        def names(span):
            yield span["name"]
            for child in span.get("children", ()):
                yield from names(child)

        seen = set(names(root))
        # Depth >= 3: cli.audit > sim.run > sim.steps.
        assert {"sim.run", "sim.steps", "sim.finalize",
                "lab.suite", "derive.model", "derive.class"} <= seen
        sim_run = root["children"][0]
        assert sim_run["name"] == "sim.run"
        assert sim_run["sim_duration_s"] > 0

    def test_trace_disabled_after_run(self, tmp_path, capsys):
        from repro.obs import tracing
        _audit(["--trace-out", str(tmp_path / "t.json")], capsys)
        assert tracing.get_tracer() is None


class TestOutputUnperturbed:
    def test_audit_stdout_byte_identical_with_obs(self, tmp_path, capsys):
        plain = _audit([], capsys).out
        observed = _audit(
            ["--metrics-out", str(tmp_path / "m.prom"),
             "--trace-out", str(tmp_path / "t.json")], capsys).out
        assert observed == plain


class TestLogFlags:
    def test_log_json_makes_report_parseable(self, capsys):
        out = _audit(["--log-json"], capsys).out
        lines = [json.loads(line) for line in out.strip().splitlines()]
        messages = [doc["message"] for doc in lines]
        assert any(m.startswith("routers") for m in messages)
        assert all(doc["logger"] == "netpower.report.out"
                   for doc in lines)

    def test_log_level_debug_emits_diagnostics(self, capsys):
        captured = _audit(["--log-level", "info"], capsys)
        assert "simulation run complete" in captured.err
        assert "simulation run complete" not in captured.out

    def test_default_keeps_stderr_quiet(self, capsys):
        captured = _audit([], capsys)
        assert captured.err == ""

    def test_errors_still_reach_stderr(self, capsys):
        code = main(["derive", "NO-SUCH-DEVICE", "QSFP28-100G-DAC"])
        assert code == 2
        assert "known models" in capsys.readouterr().err
