"""Campaign save/load: the released-data artifact format."""

import numpy as np
import pytest

from repro import units
from repro.datasets import CampaignDataset, load_campaign, save_campaign
from repro.network import (
    DeployAutopower,
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)


@pytest.fixture(scope="module")
def campaign_pair(small_fleet_config, tmp_path_factory):
    network = build_switch_like_network(small_fleet_config,
                                        rng=np.random.default_rng(61))
    host = sorted(network.routers)[0]
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(62),
                                n_demands=60)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(63))
    result = sim.run(duration_s=units.hours(8), step_s=900,
                     events=[DeployAutopower(at_s=3600, hostname=host)],
                     detailed_hosts=[host])
    path = tmp_path_factory.mktemp("dataset") / "campaign.npz"
    save_campaign(result, path)
    return result, load_campaign(path), host


class TestRoundTrip:
    def test_router_set_preserved(self, campaign_pair):
        original, loaded, _host = campaign_pair
        assert loaded.routers() == sorted(original.snmp)

    def test_power_traces_exact(self, campaign_pair):
        original, loaded, _host = campaign_pair
        for hostname in original.snmp:
            np.testing.assert_array_equal(
                loaded.snmp[hostname].power.values,
                original.snmp[hostname].power.values)

    def test_counters_exact(self, campaign_pair):
        original, loaded, host = campaign_pair
        for iface_name, iface in original.snmp[host].interfaces.items():
            restored = loaded.snmp[host].interfaces[iface_name]
            np.testing.assert_array_equal(restored.rx_octets.counts,
                                          iface.rx_octets.counts)
            np.testing.assert_array_equal(restored.tx_packets.counts,
                                          iface.tx_packets.counts)

    def test_inventory_and_models(self, campaign_pair):
        original, loaded, host = campaign_pair
        assert loaded.snmp[host].inventory == original.snmp[host].inventory
        assert loaded.snmp[host].router_model \
            == original.snmp[host].router_model

    def test_autopower_exact(self, campaign_pair):
        original, loaded, host = campaign_pair
        np.testing.assert_array_equal(loaded.autopower[host].values,
                                      original.autopower[host].values)

    def test_sensor_exports_preserved(self, campaign_pair):
        original, loaded, _host = campaign_pair
        assert len(loaded.sensor_exports) == len(original.sensor_exports)
        a = original.sensor_exports[0]
        b = loaded.sensor_exports[0]
        assert (a.router, a.psu_index, a.input_w) \
            == (b.router, b.psu_index, b.input_w)

    def test_totals_preserved(self, campaign_pair):
        original, loaded, _host = campaign_pair
        np.testing.assert_array_equal(loaded.total_power.values,
                                      original.total_power.values)


class TestAnalysesFromFile:
    def test_psu_analysis_runs_from_release(self, campaign_pair):
        from repro.psu_opt import clean_exports, upgrade_savings
        from repro.hardware import EightyPlus
        _original, loaded, _host = campaign_pair
        points = clean_exports(loaded.sensor_exports)
        saving = upgrade_savings(points, EightyPlus.PLATINUM)
        assert saving.reference_w > 0

    def test_validation_runs_from_release(self, campaign_pair, ncs_model):
        from repro.validation import predict_from_trace
        _original, loaded, host = campaign_pair
        trace = loaded.snmp[host]
        # The loaded trace plugs straight into the prediction pipeline.
        series = predict_from_trace(ncs_model, trace)
        assert len(series) > 0

    def test_table1_medians_from_release(self, campaign_pair):
        _original, loaded, _host = campaign_pair
        medians = {h: t.median_power_w() for h, t in loaded.snmp.items()
                   if np.isfinite(t.median_power_w())}
        assert medians


class TestFormatGuards:
    def test_version_check(self, tmp_path):
        import json
        bad = tmp_path / "bad.npz"
        meta = np.frombuffer(json.dumps({"version": 99}).encode(),
                             dtype=np.uint8)
        np.savez_compressed(bad, __meta__=meta)
        with pytest.raises(ValueError, match="format version"):
            load_campaign(bad)
