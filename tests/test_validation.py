"""Three-way comparison of power data sources (§6.2)."""

import numpy as np
import pytest

from repro import units
from repro.telemetry.traces import TimeSeries
from repro.validation import (
    ComparisonStats,
    TelemetryVerdict,
    compare_series,
)


def series(values, period=300.0, t0=0.0):
    values = np.asarray(values, dtype=float)
    return TimeSeries(t0 + period * np.arange(len(values)), values)


def diurnal(n=600, base=350.0, amplitude=10.0, period=300.0):
    t = period * np.arange(n)
    return TimeSeries(t, base + amplitude * np.sin(
        2 * np.pi * t / units.SECONDS_PER_DAY))


class TestCompareSeries:
    def test_identical_series(self):
        ref = diurnal()
        stats = compare_series(ref, ref)
        assert stats.offset_w == pytest.approx(0.0)
        assert stats.correlation == pytest.approx(1.0)
        assert stats.verdict() == TelemetryVerdict.TRUSTWORTHY

    def test_constant_offset_detected(self):
        ref = diurnal()
        shifted = ref.shifted(17.5)
        stats = compare_series(shifted, ref)
        assert stats.offset_w == pytest.approx(17.5, abs=0.2)
        assert stats.precise
        assert stats.verdict() == TelemetryVerdict.PRECISE_NOT_ACCURATE

    def test_pseudo_constant_is_uninformative(self):
        ref = diurnal(amplitude=10.0)
        flat = series(np.full(len(ref), 360.0))
        stats = compare_series(flat, ref)
        assert not stats.precise
        assert stats.verdict() == TelemetryVerdict.UNINFORMATIVE

    def test_noisy_but_tracking_is_precise(self):
        rng = np.random.default_rng(0)
        ref = diurnal(amplitude=8.0)
        noisy = TimeSeries(ref.timestamps,
                           ref.values + 9 + rng.normal(0, 0.8, len(ref)))
        stats = compare_series(noisy, ref)
        assert stats.precise
        assert stats.offset_w == pytest.approx(9.0, abs=0.5)

    def test_empty_series(self):
        stats = compare_series(series([]), diurnal())
        assert stats.n_samples == 0
        assert stats.verdict() == TelemetryVerdict.ABSENT

    def test_disjoint_time_ranges(self):
        a = series([1, 2, 3], t0=0)
        b = series([1, 2, 3], t0=1e6)
        assert compare_series(a, b).n_samples == 0

    def test_different_sampling_rates_align(self):
        # SNMP at 5 min vs Autopower at 30 s must still compare cleanly.
        ref = diurnal(n=4000, period=30.0)
        coarse = diurnal(n=400, period=300.0).shifted(5.0)
        stats = compare_series(coarse, ref)
        assert stats.offset_w == pytest.approx(5.0, abs=0.3)
        assert stats.precise

    def test_accurate_within(self):
        stats = ComparisonStats(offset_w=3.0, residual_std_w=0.1,
                                correlation=0.99, reference_std_w=5.0,
                                reference_level_w=100.0, n_samples=100)
        assert stats.accurate_within(5.0)
        assert not stats.accurate_within(2.0)
