"""Failure injection: the pipeline must degrade gracefully, not garble.

Measurement campaigns fail in boring ways -- meters glitch, counters
reset mid-campaign, uplinks flap, demands become unroutable, devices
brown out.  These tests inject each failure and assert the analyses
either survive with correct results or refuse loudly.
"""

import numpy as np
import pytest

from repro import units
from repro.core import derive_power_model
from repro.core.derivation import DerivationError
from repro.hardware import VirtualRouter, connect, router_spec
from repro.lab import ExperimentPlan, Orchestrator, PowerMeter
from repro.network.traffic import Demand, TrafficMatrix
from repro.telemetry.autopower import (
    AutopowerClient,
    AutopowerServer,
    OutageWindow,
    Transport,
)
from repro.telemetry.snmp import SnmpCollector
from repro.telemetry.traces import CounterSeries, TimeSeries
from repro.validation import compare_series


class TestMeterFailures:
    def test_bad_meter_biases_but_does_not_break_derivation(self, rng):
        """A meter at 3x the spec'd gain error shifts every parameter by
        a common factor -- the derivation still converges and stays
        self-consistent (slopes scale together)."""
        dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                            noise_std_w=0.2)
        bad_meter = PowerMeter(rng=rng, gain_error_limit=0.015)
        orchestrator = Orchestrator(dut, meter=bad_meter, rng=rng)
        plan = ExperimentPlan(trx_name="QSFP28-100G-DAC",
                              n_pairs_values=(1, 2, 4, 8),
                              rates_gbps=(10, 50, 100),
                              packet_sizes=(256, 1500),
                              measure_duration_s=15, settle_time_s=2)
        model, _ = derive_power_model([orchestrator.run_suite(plan)])
        gain = bad_meter.channels[0].gain
        assert model.p_base_w.value == pytest.approx(320.0 * gain,
                                                     rel=0.05)

    def test_noisy_meter_widens_uncertainty(self, rng):
        dut = VirtualRouter(router_spec("NCS-55A1-24H"),
                            rng=np.random.default_rng(5), noise_std_w=0.2)
        plan = ExperimentPlan(trx_name="QSFP28-100G-DAC",
                              n_pairs_values=(1, 2, 4, 8),
                              rates_gbps=(10, 50, 100),
                              packet_sizes=(256, 1500),
                              measure_duration_s=15, settle_time_s=2)

        def stderr_with(noise):
            meter = PowerMeter(rng=np.random.default_rng(6),
                               noise_std_w=noise)
            orch = Orchestrator(
                dut, meter=meter, rng=np.random.default_rng(7))
            model, _ = derive_power_model([orch.run_suite(plan)])
            iface = next(iter(model.interfaces.values()))
            return iface.p_port_w.stderr

        assert stderr_with(2.0) > stderr_with(0.05)


class TestCounterFailures:
    def test_mid_campaign_reboot_isolated(self, rng):
        """A reboot mid-campaign must poison only the spanning interval."""
        router = VirtualRouter(router_spec("NCS-55A1-24H"),
                               hostname="reboot-test", rng=rng,
                               noise_std_w=0)
        for i in (0, 1):
            router.port(i).plug("QSFP28-100G-DAC")
            router.port(i).set_admin(True)
        connect(router.port(0), router.port(1))
        router.port(0).offer_traffic(rx_bps=1e9, tx_bps=1e9)
        collector = SnmpCollector([router])
        for step in range(8):
            collector.record(step * 300.0)
            router.advance(300)
            if step == 3:
                router.power_cycle()
        trace = collector.finalize()["reboot-test"]
        rates = trace.interfaces["Eth0/0"].rx_octets.rates()
        bad = np.isnan(rates.values)
        assert bad.sum() == 1          # exactly the reboot interval
        good = rates.values[~bad]
        assert np.all(good >= 0)

    def test_garbage_counter_series_rejected(self):
        with pytest.raises(ValueError):
            CounterSeries(np.array([0.0, 1.0]),
                          np.array([1, 2, 3], dtype=np.uint64))


class TestAutopowerFailures:
    def test_overlapping_outages(self, rng):
        router = VirtualRouter(router_spec("8201-32FH"), rng=rng,
                               noise_std_w=0.1)
        server = AutopowerServer()
        transport = Transport([OutageWindow(5, 20), OutageWindow(15, 40)])
        client = AutopowerClient("u", router, server, transport=transport,
                                 rng=rng, upload_period_s=5)
        t = 0.0
        while t < 60:
            router.advance(0.5)
            client.tick(t)
            t += 0.5
        client.try_upload(60)
        assert len(server.download("u")) == 120  # nothing lost

    def test_simultaneous_power_and_network_outage(self, rng):
        router = VirtualRouter(router_spec("8201-32FH"), rng=rng,
                               noise_std_w=0.1)
        server = AutopowerServer()
        transport = Transport([OutageWindow(0, 45)])
        client = AutopowerClient("u", router, server, transport=transport,
                                 rng=rng, upload_period_s=5)
        client.add_power_outage(10, 30)
        t = 0.0
        while t < 60:
            router.advance(0.5)
            client.tick(t)
            t += 0.5
        client.try_upload(60)
        series = server.download("u")
        # 120 ticks minus 40 samples lost to the power outage.
        assert len(series) == 80
        assert len(series.slice(10, 30)) == 0


class TestRoutingFailures:
    def test_unroutable_demand_refused_loudly(self, small_fleet):
        hosts = sorted(small_fleet.routers)
        matrix = TrafficMatrix(
            small_fleet, [Demand(src=hosts[0], dst=hosts[-1],
                                 base_bps=1e9)])
        all_internal = {l.link_id for l in small_fleet.internal_links()}
        with pytest.raises(ValueError, match="unroutable"):
            matrix.reroute_without(all_internal)

    def test_unknown_endpoint_is_unroutable_not_crash(self, small_fleet):
        matrix = TrafficMatrix(
            small_fleet, [Demand(src="ghost-router", dst="other-ghost",
                                 base_bps=1e9)])
        assert matrix.paths == [None]
        # Loads simply exclude the unroutable demand.
        assert sum(matrix.base_link_loads().values()) == 0.0


class TestComparisonEdgeCases:
    def test_nan_riddled_series(self):
        t = np.arange(0, 86400, 300.0)
        values = np.where(np.arange(len(t)) % 3 == 0, np.nan, 100.0)
        holey = TimeSeries(t, values)
        stats = compare_series(holey, TimeSeries(t, np.full(len(t), 98.0)))
        assert stats.n_samples > 0
        assert stats.offset_w == pytest.approx(2.0, abs=0.5)

    def test_single_sample_overlap(self):
        a = TimeSeries(np.array([0.0, 10000.0]), np.array([1.0, 2.0]))
        b = TimeSeries(np.array([9999.0, 20000.0]), np.array([5.0, 6.0]))
        stats = compare_series(a, b)
        # One overlapping window: defined but never "precise".
        assert not stats.precise


class TestDerivationRefusals:
    def test_garbage_suite_cannot_silently_fit(self, ncs_suite):
        from repro.lab import ExperimentSuite
        empty = ExperimentSuite(dut_model="X", port_type=ncs_suite.port_type,
                                trx_name="QSFP28-100G-DAC", speed_gbps=100)
        with pytest.raises(DerivationError):
            derive_power_model([empty])

    def test_overloaded_psu_raises(self, rng):
        from repro.hardware.psu import PFE600_MODEL, PSUInstance
        psu = PSUInstance(model=PFE600_MODEL)
        with pytest.raises(ValueError, match="overloaded"):
            psu.input_power(5000)
