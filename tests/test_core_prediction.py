"""Deployment prediction from model + inventory + counters (§6.2)."""

import numpy as np
import pytest

from repro import units
from repro.core.model import InterfaceClassKey
from repro.core.prediction import (
    DeployedInterface,
    predict_instant,
    predict_trace,
    transceiver_power_w,
)


def make_interface(name="Eth0/0", trx="QSFP28-100G-DAC", n=10,
                   octet_rate=1e6, packet_rate=1e3):
    ones = np.ones(n)
    return DeployedInterface(
        name=name, trx_name=trx,
        octet_rate_rx=octet_rate * ones, octet_rate_tx=octet_rate * ones,
        packet_rate_rx=packet_rate * ones, packet_rate_tx=packet_rate * ones)


class TestDeployedInterface:
    def test_class_key_from_inventory(self):
        iface = make_interface()
        assert iface.class_key == InterfaceClassKey("QSFP28", "Passive DAC",
                                                    100)

    def test_no_module_no_key(self):
        iface = make_interface(trx=None)
        assert iface.class_key is None

    def test_unknown_module_no_key(self):
        iface = make_interface(trx="MYSTERY-800G")
        assert iface.class_key is None

    def test_physical_bit_rate_adds_layer1_overhead(self):
        iface = make_interface(octet_rate=1000, packet_rate=10)
        # 2000 B/s + 20 pps both directions -> 8 * (2000 + 20*20) bits.
        expected = 8 * (2000 + units.ETHERNET_OVERHEAD_BYTES * 20)
        assert iface.physical_bit_rate()[0] == pytest.approx(expected)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="differing lengths"):
            DeployedInterface(
                name="x", trx_name=None,
                octet_rate_rx=np.ones(3), octet_rate_tx=np.ones(3),
                packet_rate_rx=np.ones(2), packet_rate_tx=np.ones(3))


class TestPredictTrace:
    def test_base_only_when_no_interfaces(self, ncs_model):
        trace = predict_trace(ncs_model, [make_interface(trx=None)])
        np.testing.assert_allclose(trace, ncs_model.p_base_w.value)

    def test_active_interface_adds_full_stack(self, ncs_model):
        trace = predict_trace(ncs_model, [make_interface()])
        iface_model = ncs_model.interface_model(
            InterfaceClassKey("QSFP28", "Passive DAC", 100))
        assert trace[0] > ncs_model.p_base_w.value + 0.8 * (
            iface_model.p_port_w.value + iface_model.p_trx_in_w.value)

    def test_idle_interface_assumed_unplugged_by_default(self, ncs_model):
        # The paper's §6.2 behaviour that caused the Oct-22 mismatch.
        idle = make_interface(octet_rate=0.0, packet_rate=0.0)
        trace = predict_trace(ncs_model, [idle])
        np.testing.assert_allclose(trace, ncs_model.p_base_w.value)

    def test_idle_interface_keeps_trx_in_when_told(self, ncs_model):
        idle = make_interface(octet_rate=0.0, packet_rate=0.0)
        trace = predict_trace(ncs_model, [idle],
                              assume_unplugged_when_idle=False)
        iface_model = ncs_model.interface_model(
            InterfaceClassKey("QSFP28", "Passive DAC", 100))
        np.testing.assert_allclose(
            trace, ncs_model.p_base_w.value + iface_model.p_trx_in_w.value)

    def test_per_sample_activity(self, ncs_model):
        # Traffic in the second half only: the prediction steps up.
        n = 10
        rates = np.concatenate([np.zeros(5), np.full(5, 1e6)])
        iface = DeployedInterface(
            name="Eth0/0", trx_name="QSFP28-100G-DAC",
            octet_rate_rx=rates, octet_rate_tx=rates,
            packet_rate_rx=rates / 1000, packet_rate_tx=rates / 1000)
        trace = predict_trace(ncs_model, [iface])
        assert np.all(trace[:5] == pytest.approx(ncs_model.p_base_w.value))
        assert np.all(trace[5:] > trace[0])

    def test_empty_input_returns_base_power_series(self, ncs_model):
        # A router with no inventory still draws P_base; the old
        # zero-length return silently dropped it from fleet sums.
        trace = predict_trace(ncs_model, [], n_samples=4)
        assert trace.shape == (4,)
        np.testing.assert_array_equal(
            trace, np.full(4, ncs_model.p_base_w.value))

    def test_empty_input_without_length_is_an_error(self, ncs_model):
        with pytest.raises(ValueError, match="n_samples"):
            predict_trace(ncs_model, [])

    def test_n_samples_must_match_interfaces(self, ncs_model):
        with pytest.raises(ValueError, match="n_samples"):
            predict_trace(ncs_model, [make_interface(n=5)], n_samples=7)

    def test_mismatched_lengths_rejected(self, ncs_model):
        with pytest.raises(ValueError, match="samples"):
            predict_trace(ncs_model, [make_interface(n=5),
                                      make_interface(name="Eth0/1", n=7)])

    def test_exact_threshold_is_idle(self, ncs_model):
        # Regression for the idle/active boundary: exactly at the
        # shared threshold the interface is idle (strict >), one ulp
        # above it is active -- and every layer must agree.
        from repro.activity import ACTIVE_PPS_THRESHOLD, prediction_active
        half = ACTIVE_PPS_THRESHOLD / 2.0  # both directions sum to it
        at = make_interface(n=1, octet_rate=0.0, packet_rate=half)
        above = make_interface(
            n=1, octet_rate=0.0,
            packet_rate=np.nextafter(half, np.inf))
        trace_at = predict_trace(ncs_model, [at])
        trace_above = predict_trace(ncs_model, [above])
        assert trace_at[0] == ncs_model.p_base_w.value
        assert trace_above[0] > ncs_model.p_base_w.value
        assert not prediction_active(at.packet_rate()[0])
        assert prediction_active(above.packet_rate()[0])

    def test_predict_instant(self, ncs_model):
        value = predict_instant(ncs_model, [make_interface()], index=3)
        trace = predict_trace(ncs_model, [make_interface()])
        assert value == pytest.approx(trace[3])

    def test_predict_instant_empty_inventory(self, ncs_model):
        value = predict_instant(ncs_model, [], index=2, n_samples=4)
        assert value == ncs_model.p_base_w.value
        with pytest.raises(IndexError):
            predict_instant(ncs_model, [], index=4, n_samples=4)
        with pytest.raises(ValueError, match="n_samples"):
            predict_instant(ncs_model, [], index=0)


class TestTransceiverPower:
    def test_sums_inventory_regardless_of_traffic(self, ncs_model):
        active = make_interface()
        idle = make_interface(name="Eth0/1", octet_rate=0, packet_rate=0)
        total = transceiver_power_w(ncs_model, [active, idle])
        one = transceiver_power_w(ncs_model, [active])
        assert total == pytest.approx(2 * one)

    def test_skips_empty_ports(self, ncs_model):
        assert transceiver_power_w(ncs_model,
                                   [make_interface(trx=None)]) == 0.0
