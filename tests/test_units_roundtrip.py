"""Property tests: every ``repro.units`` conversion pair round-trips.

Each converter and its inverse must compose to the identity (to float
precision) over the physically plausible range, so no pair can silently
drift apart.  A final check asserts that ``core/model.py`` routes every
scale factor through :mod:`repro.units` -- the convention the NP-UNIT
rules enforce repository-wide.
"""

from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro import units

#: (forward, inverse, strategy) for every conversion pair the module
#: exports.  Magnitudes span the values the paper actually handles.
CONVERSION_PAIRS = [
    ("pj_to_joules", "joules_to_pj",
     st.floats(min_value=1e-3, max_value=1e9)),
    ("nj_to_joules", "joules_to_nj",
     st.floats(min_value=1e-3, max_value=1e9)),
    ("gbps_to_bps", "bps_to_gbps",
     st.floats(min_value=1e-3, max_value=1e6)),
    ("tbps_to_bps", "bps_to_tbps",
     st.floats(min_value=1e-6, max_value=1e3)),
    ("s_to_ms", "ms_to_s",
     st.floats(min_value=1e-6, max_value=1e9)),
    ("s_to_us", "us_to_s",
     st.floats(min_value=1e-6, max_value=1e9)),
]


@pytest.mark.parametrize("forward,inverse,strategy", CONVERSION_PAIRS,
                         ids=[pair[0] for pair in CONVERSION_PAIRS])
def test_conversion_pairs_round_trip(forward, inverse, strategy):
    f = getattr(units, forward)
    g = getattr(units, inverse)

    @given(strategy)
    def round_trips(value):
        assert g(f(value)) == pytest.approx(value, rel=1e-12)
        assert f(g(value)) == pytest.approx(value, rel=1e-12)

    round_trips()


@given(st.floats(min_value=1e3, max_value=1e12),
       st.floats(min_value=64, max_value=1500))
def test_packet_rate_bit_rate_round_trip(rate_bps, packet_bytes):
    pps = units.packet_rate(rate_bps, packet_bytes)
    assert units.bit_rate(pps, packet_bytes) == \
        pytest.approx(rate_bps, rel=1e-12)


@given(st.floats(min_value=1e-3, max_value=1e6))
def test_mbps_against_gbps(mbps):
    # Cross-scale consistency: 1000 Mbps must equal 1 Gbps exactly.
    assert units.mbps_to_bps(mbps) == \
        pytest.approx(units.gbps_to_bps(mbps / units.KILO), rel=1e-12)


@given(st.floats(min_value=0.0, max_value=1e6),
       st.floats(min_value=1.0, max_value=units.SECONDS_PER_WEEK))
def test_kwh_inverts_to_mean_power(power_w, duration_s):
    energy_kwh = units.kwh(power_w, duration_s)
    recovered_w = energy_kwh * units.KILO * units.SECONDS_PER_HOUR \
        / duration_s
    assert recovered_w == pytest.approx(power_w, rel=1e-12, abs=1e-9)


def test_scale_constants_are_consistent():
    assert units.PICO * units.TERA == pytest.approx(1.0)
    assert units.NANO * units.GIGA == pytest.approx(1.0)
    assert units.MICRO * units.MEGA == pytest.approx(1.0)
    assert units.MILLI * units.KILO == pytest.approx(1.0)


def test_core_model_uses_only_named_units():
    """``core/model.py`` contains no bare power-of-ten scale factors.

    The power model is where a silent pJ-vs-W slip would corrupt every
    downstream figure, so its conversions must all be named
    ``repro.units`` helpers -- checked here with the same engine that
    ``netpower check`` runs.
    """
    from repro.analysis import CheckConfig, check_source

    model = Path(__file__).resolve().parent.parent \
        / "src" / "repro" / "core" / "model.py"
    result = check_source(model.read_text(), "core/model.py",
                          CheckConfig(select=("NP-UNIT-001",)))
    assert result.findings == [], \
        [finding.render() for finding in result.findings]
    assert result.suppressed == [], \
        "core/model.py may not suppress NP-UNIT-001"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
