"""NP-API fixtures: docstrings, annotations, and ``__all__`` honesty."""

import textwrap

import pytest

from repro.analysis import check_source


def check(text: str, path: str = "zoo/fixture.py"):
    return check_source(textwrap.dedent(text).lstrip("\n"), path)


def ids(result) -> list:
    return [finding.rule_id for finding in result.findings]


class TestDocstrings:
    def test_missing_module_docstring(self):
        result = check("x = 1\n")
        assert "NP-API-001" in ids(result)

    def test_missing_function_docstring(self):
        result = check('''
            """Mod."""


            def f() -> None:
                return None
            ''')
        assert ids(result) == ["NP-API-001"]

    def test_missing_class_and_method_docstrings(self):
        result = check('''
            """Mod."""


            class Thing:
                def act(self) -> None:
                    return None
            ''')
        assert ids(result) == ["NP-API-001", "NP-API-001"]

    def test_private_and_nested_defs_exempt(self):
        result = check('''
            """Mod."""


            def _helper():
                def inner():
                    return 1
                return inner
            ''')
        assert result.findings == []

    def test_documented_surface_passes(self):
        result = check('''
            """Mod."""


            class Thing:
                """A thing."""

                def act(self) -> None:
                    """Act."""
                    return None
            ''')
        assert result.findings == []


class TestAnnotations:
    def test_unannotated_parameter(self):
        result = check('''
            """Mod."""


            def f(x) -> None:
                """F."""
                return None
            ''')
        assert ids(result) == ["NP-API-002"]
        assert "x" in result.findings[0].message

    def test_missing_return_annotation(self):
        result = check('''
            """Mod."""


            def f(x: int):
                """F."""
                return x
            ''')
        assert ids(result) == ["NP-API-002"]

    def test_self_and_cls_exempt(self):
        result = check('''
            """Mod."""


            class Thing:
                """A thing."""

                def act(self, n: int) -> int:
                    """Act."""
                    return n

                @classmethod
                def make(cls) -> "Thing":
                    """Make."""
                    return cls()
            ''')
        assert result.findings == []

    def test_starargs_need_annotations(self):
        result = check('''
            """Mod."""


            def f(*args, **kwargs) -> None:
                """F."""
                return None
            ''')
        assert ids(result) == ["NP-API-002"]
        assert "args" in result.findings[0].message
        assert "kwargs" in result.findings[0].message

    def test_fully_annotated_passes(self):
        result = check('''
            """Mod."""
            from typing import Optional


            def f(x: int, *rest: float,
                  flag: Optional[bool] = None,
                  **extra: object) -> int:
                """F."""
                return x
            ''')
        assert result.findings == []


class TestDunderAll:
    def test_phantom_export_flagged(self):
        result = check('''
            """Mod."""

            __all__ = ["real", "phantom"]


            def real() -> None:
                """R."""
                return None
            ''')
        assert ids(result) == ["NP-API-003"]
        assert "phantom" in result.findings[0].message

    def test_duplicate_export_flagged(self):
        result = check('''
            """Mod."""

            __all__ = ["real", "real"]


            def real() -> None:
                """R."""
                return None
            ''')
        assert ids(result) == ["NP-API-003"]

    def test_imports_and_assigns_count_as_bindings(self):
        result = check('''
            """Mod."""
            import json
            from os.path import join as path_join

            CONSTANT = 3

            __all__ = ["CONSTANT", "json", "path_join"]
            ''')
        assert result.findings == []

    def test_star_import_disables_binding_check(self):
        result = check('''
            """Mod."""
            from os.path import *

            __all__ = ["anything"]
            ''')
        assert "NP-API-003" not in ids(result)


class TestPackageSelfConsistency:
    def test_analysis_package_all_is_sorted_and_real(self):
        import repro.analysis as analysis
        assert analysis.__all__ == sorted(analysis.__all__)
        for name in analysis.__all__:
            assert hasattr(analysis, name)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
