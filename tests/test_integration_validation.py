"""End-to-end §6 pipeline: lab models vs deployed ground truth.

This is the reproduction's core integration test.  A small fleet runs for
several simulated days with Autopower units on three router models (the
Fig. 4 trio's quirk spectrum); lab-derived power models then predict the
deployed power from inventory + counters, and the three-way comparison
must reproduce the paper's qualitative findings:

* model predictions are *precise* (shape tracks) but carry an offset;
* PSU telemetry is offset-but-precise on the 8201, pseudo-constant on
  the NCS, absent on the N540X.
"""

import numpy as np
import pytest

from repro import units
from repro.core import derive_power_model
from repro.hardware import VirtualRouter, router_spec
from repro.lab import ExperimentPlan, Orchestrator
from repro.network import (
    DeployAutopower,
    FleetConfig,
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)
from repro.validation import TelemetryVerdict, validate_router

VALIDATION_MODELS = ("8201-32FH", "NCS-55A1-24H", "N540X-8Z16G-SYS-A")


@pytest.fixture(scope="module")
def deployment():
    """A 4-day monitored run of a small fleet with Autopower on 3 hosts."""
    config = FleetConfig(
        model_counts=(
            ("8201-32FH", 2),
            ("NCS-55A1-24H", 3),
            ("NCS-55A1-24Q6H-SS", 3),
            ("N540X-8Z16G-SYS-A", 2),
            ("ASR-920-24SZ-M", 5),
        ),
        n_regional_pops=3, core_core_links=2)
    network = build_switch_like_network(config,
                                        rng=np.random.default_rng(31))
    hosts = {}
    for model in VALIDATION_MODELS:
        hosts[model] = next(h for h in sorted(network.routers)
                            if network.routers[h].model_name == model)
    # Heavier-than-default traffic so the diurnal power signal is
    # clearly visible on the validation routers (as it is in Fig. 4).
    traffic = FleetTrafficModel(network, rng=np.random.default_rng(32),
                                n_demands=120,
                                mean_external_utilisation=0.05,
                                internal_utilisation_scale=6.0)
    sim = NetworkSimulation(network, traffic,
                            rng=np.random.default_rng(33))
    events = [DeployAutopower(at_s=units.hours(3), hostname=h)
              for h in hosts.values()]
    result = sim.run(duration_s=units.days(4), step_s=900, events=events,
                     detailed_hosts=sorted(hosts.values()))
    return network, hosts, result


def derive_for(model_name: str, plans, seed: int):
    rng = np.random.default_rng(seed)
    dut = VirtualRouter(router_spec(model_name), rng=rng, noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    suites = [orchestrator.run_suite(plan) for plan in plans]
    model, _ = derive_power_model(suites)
    return model


@pytest.fixture(scope="module")
def lab_models():
    quick = dict(n_pairs_values=(1, 2, 4, 6), rates_gbps=(2.5, 10, 25, 50),
                 packet_sizes=(256, 1500), snake_n_pairs=3,
                 measure_duration_s=20, settle_time_s=2)
    return {
        "8201-32FH": derive_for("8201-32FH", [
            ExperimentPlan(trx_name="QSFP-DD-400G-FR4", **quick),
            ExperimentPlan(trx_name="QSFP-DD-400G-LR4", **quick),
            ExperimentPlan(trx_name="QSFP-DD-400G-DAC", **quick),
            ExperimentPlan(trx_name="QSFP28-100G-LR4", **quick),
        ], seed=101),
        "NCS-55A1-24H": derive_for("NCS-55A1-24H", [
            ExperimentPlan(trx_name="QSFP28-100G-DAC", **quick),
            ExperimentPlan(trx_name="QSFP28-100G-LR4", **quick),
        ], seed=102),
        "N540X-8Z16G-SYS-A": derive_for("N540X-8Z16G-SYS-A", [
            ExperimentPlan(trx_name="SFP+-10G-SR",
                           n_pairs_values=(1, 2, 3, 4),
                           rates_gbps=(1, 2.5, 5, 10),
                           packet_sizes=(256, 1500), snake_n_pairs=2,
                           measure_duration_s=20, settle_time_s=2),
            ExperimentPlan(trx_name="SFP-1G-T",
                           n_pairs_values=(1, 2, 4, 6),
                           rates_gbps=(0.1, 0.3, 0.6, 0.9),
                           packet_sizes=(256, 1500), snake_n_pairs=2,
                           measure_duration_s=20, settle_time_s=2),
            ExperimentPlan(trx_name="SFP-1G-LX",
                           n_pairs_values=(1, 2, 4, 6),
                           rates_gbps=(0.1, 0.3, 0.6, 0.9),
                           packet_sizes=(256, 1500), snake_n_pairs=2,
                           measure_duration_s=20, settle_time_s=2),
        ], seed=103),
    }


@pytest.fixture(scope="module")
def reports(deployment, lab_models):
    network, hosts, result = deployment
    out = {}
    for model_name, hostname in hosts.items():
        out[model_name] = validate_router(
            hostname=hostname,
            trace=result.snmp[hostname],
            autopower=result.autopower[hostname],
            model=lab_models[model_name])
    return out


class TestModelPrecision:
    """Q3: models precisely predict power, with an offset (Fig. 4)."""

    @pytest.mark.parametrize("model_name", VALIDATION_MODELS)
    def test_model_offset_bounded(self, reports, model_name):
        stats = reports[model_name].model_stats
        assert stats.n_samples > 50
        # The paper saw 3-13 W offsets; ours must stay the same order
        # relative to the device's power.
        autopower_level = reports[model_name].autopower.mean()
        assert abs(stats.offset_w) < 0.15 * autopower_level

    @pytest.mark.parametrize("model_name", VALIDATION_MODELS)
    def test_model_is_precise(self, reports, model_name):
        stats = reports[model_name].model_stats
        assert stats.verdict() in (TelemetryVerdict.TRUSTWORTHY,
                                   TelemetryVerdict.PRECISE_NOT_ACCURATE)

    def test_traffic_fluctuations_tracked(self, reports):
        # The diurnal shape must show up in the prediction (correlation
        # on the 30-min averaged series).
        stats = reports["8201-32FH"].model_stats
        assert stats.correlation > 0.5

    def test_offset_corrected_model_hugs_measurement(self, reports):
        # The Fig. 9 view: after removing the constant offset, residuals
        # are small compared to the signal.
        report = reports["8201-32FH"]
        corrected = report.offset_corrected_model()
        from repro.validation import compare_series
        stats = compare_series(corrected, report.autopower)
        assert abs(stats.offset_w) < 2.0


class TestPsuVerdicts:
    """Q2: PSU telemetry trustworthiness varies by platform (Fig. 4)."""

    def test_8201_precise_but_offset(self, reports):
        stats = reports["8201-32FH"].psu_stats
        assert stats is not None
        # The 8201's PSU telemetry carries a 15-20 W constant offset.
        assert 10 < stats.offset_w < 25
        assert reports["8201-32FH"].psu_verdict() \
            == TelemetryVerdict.PRECISE_NOT_ACCURATE

    def test_ncs_pseudo_constant(self, reports):
        report = reports["NCS-55A1-24H"]
        assert report.psu_verdict() == TelemetryVerdict.UNINFORMATIVE

    def test_n540x_reports_nothing(self, reports):
        report = reports["N540X-8Z16G-SYS-A"]
        assert report.psu_verdict() == TelemetryVerdict.ABSENT
        assert report.psu_series is None


class TestAutopowerGroundTruth:
    def test_external_series_continuous(self, deployment):
        _network, hosts, result = deployment
        for hostname in hosts.values():
            series = result.autopower[hostname]
            assert series.duration_s > units.days(3.5)
            assert not np.isnan(series.values).any()
