"""Edge paths not covered elsewhere: warnings, empty inputs, fallbacks."""

import numpy as np
import pytest

from repro.core import derive_class
from repro.lab import ExperimentSuite, MeasurementFrame
from repro.lab.power_meter import PowerSummary
from repro.telemetry.snmp import RouterTrace
from repro.telemetry.traces import TimeSeries


def frame(experiment, n_pairs, mean_w, trx="QSFP28-100G-DAC", speed=100.0,
          flow=None):
    summary = PowerSummary(mean_w=mean_w, std_w=0.1, median_w=mean_w,
                           n_samples=30, duration_s=30)
    return MeasurementFrame(
        experiment=experiment, n_pairs=n_pairs,
        trx_name=trx if experiment != "base" else None,
        speed_gbps=speed if experiment != "base" else None,
        summary=summary, flow=flow)


def synthetic_suite(base=320.0, idle_slope=0.04, port_slope=0.36,
                    trx_slope=1.06, base_frame_value=None):
    """A hand-built suite following the §5 ladder exactly."""
    from repro.hardware.transceiver import PortType
    suite = ExperimentSuite(dut_model="NCS-55A1-24H",
                            port_type=PortType.QSFP28,
                            trx_name="QSFP28-100G-DAC", speed_gbps=100.0)
    suite.frames.append(frame("base", 0,
                              base if base_frame_value is None
                              else base_frame_value))
    for n in (1, 2, 4, 8):
        suite.frames.append(frame("idle", n, base + idle_slope * n))
        suite.frames.append(frame("port", n, base + port_slope * n))
        suite.frames.append(frame("trx", n, base + trx_slope * n))
    return suite


class TestDerivationWarnings:
    def test_clean_synthetic_suite_is_exact(self):
        model, report = derive_class(synthetic_suite())
        # idle slope 0.04 = 2*P_trx,in; port slope - idle slope = P_port;
        # (trx - idle)/2 - P_port = P_trx,up.
        assert model.p_trx_in_w.value == pytest.approx(0.02)
        assert model.p_port_w.value == pytest.approx(0.32)
        assert model.p_trx_up_w.value == pytest.approx(0.19)
        # Only the (expected) no-snake warning: the statics are clean.
        assert all("Snake" in w or "snake" in w for w in report.warnings)

    def test_bogus_base_triggers_intercept_warning(self):
        # Base measured 60 W below where the Idle ladder extrapolates:
        # the §5.2 cross-check must flag it.
        suite = synthetic_suite(base_frame_value=260.0)
        _model, report = derive_class(suite)
        assert any("intercept" in w for w in report.warnings)


class TestSuiteAccessors:
    def test_base_power_requires_base_frames(self):
        from repro.hardware.transceiver import PortType
        suite = ExperimentSuite(dut_model="X", port_type=PortType.QSFP28,
                                trx_name="QSFP28-100G-DAC",
                                speed_gbps=100.0)
        with pytest.raises(ValueError, match="no Base"):
            suite.base_power_w

    def test_snake_by_packet_size_empty(self):
        suite = synthetic_suite()
        assert suite.snake_by_packet_size() == {}


class TestTraceAccessors:
    def test_total_octet_rate_without_interfaces(self):
        trace = RouterTrace(
            hostname="h", router_model="m",
            power=TimeSeries(np.arange(3.0), np.ones(3)))
        assert len(trace.total_octet_rate()) == 0

    def test_median_power_all_nan(self):
        trace = RouterTrace(
            hostname="h", router_model="m",
            power=TimeSeries(np.arange(3.0), np.full(3, np.nan)))
        assert np.isnan(trace.median_power_w())


class TestModelFallbackChain:
    def test_any_model_fallback_used_as_last_resort(self, ncs_model):
        from repro.core.model import InterfaceClassKey
        # A port type the model never saw: nearest-speed any-class.
        resolved = ncs_model.interface_model(
            InterfaceClassKey("CFP2", "LR4", 100))
        assert resolved.key.port_type == "CFP2"
        assert np.isfinite(resolved.p_port_w.value)


class TestOrchestratorEligibility:
    def test_incompatible_module_rejected(self, rng):
        from repro.hardware import VirtualRouter, router_spec
        from repro.lab import ExperimentPlan, Orchestrator
        dut = VirtualRouter(router_spec("Catalyst 3560"), rng=rng)
        orchestrator = Orchestrator(dut, rng=rng)
        plan = ExperimentPlan(trx_name="QSFP-DD-400G-FR4",
                              measure_duration_s=5)
        with pytest.raises(ValueError, match="no port accepting"):
            orchestrator.run_suite(plan)
