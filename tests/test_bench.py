"""Smoke tests for the engine benchmark harness (:mod:`repro.bench`).

The full benchmark takes minutes; here we only check that a truncated
``--quick`` run exits cleanly and writes a well-formed report, and that
the CLI wiring rejects bad arguments.  The real performance assertion
lives in ``benchmarks/test_perf_simulation.py``.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

from repro import bench
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_compare():
    """Import ``scripts/bench_compare.py`` as a module."""
    spec = importlib.util.spec_from_file_location(
        "bench_compare", REPO_ROOT / "scripts" / "bench_compare.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchModule:
    def test_quick_report_is_well_formed(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = bench.main(["--quick", "--steps", "20",
                         "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == bench.SCHEMA
        assert report["seed"] == 7
        assert [c["name"] for c in report["cases"]] == ["small"]
        case = report["cases"][0]
        for key in ("routers", "ports", "links", "n_steps", "step_s",
                    "object", "vector", "phases", "speedup",
                    "total_power_max_rel_err"):
            assert key in case, key
        assert case["n_steps"] == 20
        for engine in ("object", "vector"):
            assert case[engine]["wall_s"] > 0
            assert case[engine]["ms_per_step"] > 0
            # Phase timings come from the tracing spans; the run phase
            # is the same measurement the wall_s headline reports.
            assert case["phases"][engine]["build_s"] >= 0
            assert case["phases"][engine]["run_s"] > 0
        assert case["phases"]["crosscheck_s"] >= 0
        # Same seeds -> same fleet; the engines must agree.
        assert case["total_power_max_rel_err"] < 1e-9

    def test_rejects_nonpositive_steps(self, tmp_path):
        rc = bench.main(["--quick", "--steps", "0",
                         "--output", str(tmp_path / "x.json")])
        assert rc == 2

    def test_case_table(self):
        assert set(bench.DEFAULT_CASES) <= set(bench.CASES)
        assert "large" in bench.CASES
        assert bench.CASES["large"].n_steps == 10000


class TestReportMerging:
    """A subset run must merge into an existing report, not replace it."""

    def test_subset_run_keeps_other_cases(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        # A fake previous full run with a hand-written medium entry.
        previous_medium = {"name": "medium", "seed": 3, "n_steps": 1,
                          "object": {"wall_s": 9.9}}
        out.write_text(json.dumps({
            "schema": bench.SCHEMA, "seed": 3, "step_s": bench.STEP_S,
            "cases": [previous_medium]}))
        rc = bench.main(["--quick", "--steps", "5", "--seed", "11",
                         "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        # Suite order, with the untouched medium entry preserved.
        assert [c["name"] for c in report["cases"]] == ["small", "medium"]
        assert report["cases"][1] == previous_medium
        assert report["cases"][0]["seed"] == 11
        assert report["seed"] == 11
        assert "kept previous entries for: medium" in \
            capsys.readouterr().out

    def test_rerun_replaces_same_case(self, tmp_path):
        out = tmp_path / "bench.json"
        bench.main(["--quick", "--steps", "5", "--output", str(out)])
        first = json.loads(out.read_text())
        bench.main(["--quick", "--steps", "8", "--output", str(out)])
        second = json.loads(out.read_text())
        assert [c["name"] for c in first["cases"]] == ["small"]
        assert [c["name"] for c in second["cases"]] == ["small"]
        assert second["cases"][0]["n_steps"] == 8

    def test_other_schema_is_not_merged(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text(json.dumps({
            "schema": "repro.bench.simulation/v2", "seed": 7,
            "cases": [{"name": "large", "n_steps": 10000}]}))
        bench.main(["--quick", "--steps", "5", "--output", str(out)])
        report = json.loads(out.read_text())
        # The v2 entry's layout predates per-case seeds; dropping it
        # beats grafting stale semantics onto a v3 report.
        assert [c["name"] for c in report["cases"]] == ["small"]

    def test_corrupt_previous_report_is_ignored(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text("{not json")
        rc = bench.main(["--quick", "--steps", "5", "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert [c["name"] for c in report["cases"]] == ["small"]


class TestProfileBlocks:
    def test_engine_entries_carry_kernel_profiles(self, tmp_path):
        out = tmp_path / "bench.json"
        assert bench.main(["--quick", "--steps", "20",
                           "--output", str(out)]) == 0
        case = json.loads(out.read_text())["cases"][0]
        for engine in ("object", "vector"):
            prof = case[engine]["profile"]
            assert "kernel.apply_traffic" in prof
            assert "kernel.wall_power" in prof
            for stats in prof.values():
                assert stats["calls"] > 0
                assert stats["cum_ms"] >= stats["self_ms"] >= 0


class TestCompareReports:
    """The regression sentinel: diffing two bench reports."""

    def _report(self, tmp_path):
        out = tmp_path / "bench.json"
        assert bench.main(["--quick", "--steps", "20",
                           "--output", str(out)]) == 0
        return json.loads(out.read_text())

    def test_identical_reports_are_clean(self, tmp_path):
        report = self._report(tmp_path)
        comparison = bench.compare_reports(report, report,
                                           tolerance=0.15,
                                           min_kernel_ms=0.0)
        assert comparison["checked"] > 0
        assert comparison["regressions"] == []
        assert comparison["improvements"] == []

    def test_injected_kernel_slowdown_is_a_regression(self, tmp_path):
        current = self._report(tmp_path)
        baseline = copy.deepcopy(current)
        # Make the current run read 25% slower than the baseline on one
        # kernel -- past the 15% default tolerance.
        kernel = baseline["cases"][0]["vector"]["profile"][
            "kernel.apply_traffic"]
        kernel["cum_ms"] /= 1.25
        comparison = bench.compare_reports(current, baseline,
                                           tolerance=0.15,
                                           min_kernel_ms=0.0)
        metrics = [r["metric"] for r in comparison["regressions"]]
        assert metrics == ["kernel:kernel.apply_traffic"]
        assert comparison["regressions"][0]["ratio"] == \
            pytest.approx(1.25, rel=1e-3)

    def test_quiet_kernels_are_skipped(self, tmp_path):
        current = self._report(tmp_path)
        baseline = copy.deepcopy(current)
        for entry in baseline["cases"]:
            for engine in ("object", "vector"):
                for stats in entry[engine]["profile"].values():
                    stats["cum_ms"] /= 10.0
        comparison = bench.compare_reports(current, baseline,
                                           min_kernel_ms=1e9)
        assert not any(r["metric"].startswith("kernel:")
                       for r in comparison["regressions"])

    def test_schema_mismatch_raises(self, tmp_path):
        report = self._report(tmp_path)
        stale = dict(report, schema="repro.bench.simulation/v5")
        with pytest.raises(ValueError, match="regenerate the baseline"):
            bench.compare_reports(report, stale)
        with pytest.raises(ValueError, match="regenerate the baseline"):
            bench.compare_reports(stale, report)

    def test_compare_script_exit_codes(self, tmp_path, capsys):
        script = _load_bench_compare()
        report = self._report(tmp_path)
        current_path = tmp_path / "bench.json"
        slowed = tmp_path / "slowed_baseline.json"
        baseline = copy.deepcopy(report)
        baseline["cases"][0]["vector"]["profile"][
            "kernel.apply_traffic"]["cum_ms"] /= 2.0
        slowed.write_text(json.dumps(baseline))
        assert script.main([str(current_path), str(current_path)]) == 0
        assert script.main([str(current_path), str(slowed),
                            "--min-kernel-ms", "0"]) == 1
        with pytest.raises(SystemExit) as excinfo:
            script.main([str(current_path),
                         str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_cli_bench_compare_flags(self, tmp_path, capsys):
        report = self._report(tmp_path)
        current_path = tmp_path / "bench.json"
        # Clean self-comparison at a generous tolerance: exit 0 (the
        # re-run's timings are noisy, the structure is what we pin).
        rc = cli_main(["bench", "--quick", "--steps", "20",
                       "--output", str(tmp_path / "rerun.json"),
                       "--compare", str(current_path),
                       "--tolerance", "100.0", "--history", "-"])
        assert rc == 0
        # A baseline that makes every metric read much slower: exit 1.
        slowed = tmp_path / "slow.json"
        scaled = copy.deepcopy(report)
        for entry in scaled["cases"]:
            for engine in ("object", "vector"):
                for key in ("ms_per_step", "ms_per_step_per_1k_routers"):
                    entry[engine][key] /= 1000.0
        slowed.write_text(json.dumps(scaled))
        rc = cli_main(["bench", "--quick", "--steps", "20",
                       "--output", str(tmp_path / "rerun2.json"),
                       "--compare", str(slowed), "--history", "-"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
        # An unreadable baseline fails fast, before the run: exit 2.
        rc = cli_main(["bench", "--quick", "--steps", "20",
                       "--output", str(tmp_path / "rerun3.json"),
                       "--compare", str(tmp_path / "nope.json")])
        assert rc == 2
        capsys.readouterr()


class TestBenchHistory:
    def test_history_appends_one_line_per_run(self, tmp_path):
        out = tmp_path / "bench.json"
        history = tmp_path / "BENCH_history.jsonl"
        for _ in range(2):
            assert bench.main(["--quick", "--steps", "10",
                               "--output", str(out)]) == 0
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        entry = json.loads(lines[0])
        assert entry["schema"] == bench.HISTORY_SCHEMA
        small = entry["cases"]["small"]
        for engine in ("object", "vector"):
            assert small[engine]["ms_per_step"] > 0
            assert small[engine]["kernel_cum_ms"]
        # No wall-clock date: append order is the trajectory.
        assert "date" not in entry and "time" not in entry

    def test_dash_disables_history(self, tmp_path):
        out = tmp_path / "bench.json"
        assert bench.main(["--quick", "--steps", "10",
                           "--output", str(out), "--history", "-"]) == 0
        assert not (tmp_path / "BENCH_history.jsonl").exists()


class TestBenchCli:
    def test_cli_bench_quick(self, tmp_path):
        out = tmp_path / "cli_bench.json"
        rc = cli_main(["bench", "--quick", "--steps", "10",
                       "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["cases"][0]["n_steps"] == 10

    def test_cli_rejects_unknown_case(self, tmp_path):
        rc = cli_main(["bench", "--cases", "galactic",
                       "--output", str(tmp_path / "x.json")])
        assert rc == 2
