"""Smoke tests for the engine benchmark harness (:mod:`repro.bench`).

The full benchmark takes minutes; here we only check that a truncated
``--quick`` run exits cleanly and writes a well-formed report, and that
the CLI wiring rejects bad arguments.  The real performance assertion
lives in ``benchmarks/test_perf_simulation.py``.
"""

from __future__ import annotations

import json

from repro import bench
from repro.cli import main as cli_main


class TestBenchModule:
    def test_quick_report_is_well_formed(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = bench.main(["--quick", "--steps", "20",
                         "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == bench.SCHEMA
        assert report["seed"] == 7
        assert [c["name"] for c in report["cases"]] == ["small"]
        case = report["cases"][0]
        for key in ("routers", "ports", "links", "n_steps", "step_s",
                    "object", "vector", "phases", "speedup",
                    "total_power_max_rel_err"):
            assert key in case, key
        assert case["n_steps"] == 20
        for engine in ("object", "vector"):
            assert case[engine]["wall_s"] > 0
            assert case[engine]["ms_per_step"] > 0
            # Phase timings come from the tracing spans; the run phase
            # is the same measurement the wall_s headline reports.
            assert case["phases"][engine]["build_s"] >= 0
            assert case["phases"][engine]["run_s"] > 0
        assert case["phases"]["crosscheck_s"] >= 0
        # Same seeds -> same fleet; the engines must agree.
        assert case["total_power_max_rel_err"] < 1e-9

    def test_rejects_nonpositive_steps(self, tmp_path):
        rc = bench.main(["--quick", "--steps", "0",
                         "--output", str(tmp_path / "x.json")])
        assert rc == 2

    def test_case_table(self):
        assert set(bench.DEFAULT_CASES) <= set(bench.CASES)
        assert "large" in bench.CASES
        assert bench.CASES["large"].n_steps == 10000


class TestReportMerging:
    """A subset run must merge into an existing report, not replace it."""

    def test_subset_run_keeps_other_cases(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        # A fake previous full run with a hand-written medium entry.
        previous_medium = {"name": "medium", "seed": 3, "n_steps": 1,
                          "object": {"wall_s": 9.9}}
        out.write_text(json.dumps({
            "schema": bench.SCHEMA, "seed": 3, "step_s": bench.STEP_S,
            "cases": [previous_medium]}))
        rc = bench.main(["--quick", "--steps", "5", "--seed", "11",
                         "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        # Suite order, with the untouched medium entry preserved.
        assert [c["name"] for c in report["cases"]] == ["small", "medium"]
        assert report["cases"][1] == previous_medium
        assert report["cases"][0]["seed"] == 11
        assert report["seed"] == 11
        assert "kept previous entries for: medium" in \
            capsys.readouterr().out

    def test_rerun_replaces_same_case(self, tmp_path):
        out = tmp_path / "bench.json"
        bench.main(["--quick", "--steps", "5", "--output", str(out)])
        first = json.loads(out.read_text())
        bench.main(["--quick", "--steps", "8", "--output", str(out)])
        second = json.loads(out.read_text())
        assert [c["name"] for c in first["cases"]] == ["small"]
        assert [c["name"] for c in second["cases"]] == ["small"]
        assert second["cases"][0]["n_steps"] == 8

    def test_other_schema_is_not_merged(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text(json.dumps({
            "schema": "repro.bench.simulation/v2", "seed": 7,
            "cases": [{"name": "large", "n_steps": 10000}]}))
        bench.main(["--quick", "--steps", "5", "--output", str(out)])
        report = json.loads(out.read_text())
        # The v2 entry's layout predates per-case seeds; dropping it
        # beats grafting stale semantics onto a v3 report.
        assert [c["name"] for c in report["cases"]] == ["small"]

    def test_corrupt_previous_report_is_ignored(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text("{not json")
        rc = bench.main(["--quick", "--steps", "5", "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert [c["name"] for c in report["cases"]] == ["small"]


class TestBenchCli:
    def test_cli_bench_quick(self, tmp_path):
        out = tmp_path / "cli_bench.json"
        rc = cli_main(["bench", "--quick", "--steps", "10",
                       "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["cases"][0]["n_steps"] == 10

    def test_cli_rejects_unknown_case(self, tmp_path):
        rc = cli_main(["bench", "--cases", "galactic",
                       "--output", str(tmp_path / "x.json")])
        assert rc == 2
