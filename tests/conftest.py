"""Shared fixtures for the test suite.

Expensive artefacts (the synthetic fleet, a derived power model) are
session-scoped: they are deterministic given their seeds, and many test
modules only read them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import derive_power_model
from repro.hardware import VirtualRouter, router_spec
from repro.lab import ExperimentPlan, Orchestrator
from repro.network import FleetConfig, FleetTrafficModel, build_switch_like_network


@pytest.fixture
def rng():
    """A fresh, seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def quiet_router(rng):
    """An NCS-55A1-24H with ambient noise disabled (exact assertions)."""
    return VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                         noise_std_w=0.0)


@pytest.fixture(scope="session")
def fleet():
    """The full 107-router synthetic Switch-like network.

    Session-scoped and treated as read-only by tests; tests that mutate
    topology build their own smaller network.
    """
    return build_switch_like_network(rng=np.random.default_rng(7))


@pytest.fixture(scope="session")
def fleet_traffic(fleet):
    """A traffic model over the session fleet."""
    return FleetTrafficModel(fleet, rng=np.random.default_rng(8))


@pytest.fixture(scope="session")
def small_fleet_config():
    """A reduced fleet for tests that need to mutate or simulate quickly."""
    return FleetConfig(
        model_counts=(
            ("8201-32FH", 2),
            ("NCS-55A1-24H", 3),
            ("NCS-55A1-24Q6H-SS", 3),
            ("ASR-920-24SZ-M", 6),
            ("N540-24Z8Q2C-M", 4),
        ),
        n_regional_pops=3,
        core_core_links=2,
    )


@pytest.fixture
def small_fleet(small_fleet_config):
    """A fresh small network per test (safe to mutate)."""
    return build_switch_like_network(small_fleet_config,
                                     rng=np.random.default_rng(21))


@pytest.fixture(scope="session")
def ncs_suite():
    """A full NetPowerBench suite for the NCS-55A1-24H at 100G DAC."""
    rng = np.random.default_rng(42)
    dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                        noise_std_w=0.25)
    orchestrator = Orchestrator(dut, rng=rng)
    plan = ExperimentPlan(
        trx_name="QSFP28-100G-DAC",
        n_pairs_values=(1, 2, 4, 6, 8, 10, 12),
        rates_gbps=(2.5, 5, 10, 25, 50, 75, 100),
        packet_sizes=(64, 256, 512, 1024, 1500),
        snake_n_pairs=6, measure_duration_s=30, settle_time_s=5)
    return orchestrator.run_suite(plan)


@pytest.fixture(scope="session")
def ncs_model(ncs_suite):
    """The power model derived from :data:`ncs_suite`."""
    model, _reports = derive_power_model([ncs_suite])
    return model
