"""The synthetic Switch-like fleet: structure and calibration."""

import networkx as nx
import numpy as np
import pytest

from repro.hardware import TABLE1_MEASURED_MEDIAN_W
from repro.network import (
    FleetConfig,
    LinkKind,
    build_switch_like_network,
)


class TestFleetStructure:
    def test_107_routers(self, fleet):
        assert len(fleet.routers) == 107
        assert FleetConfig().n_routers == 107

    def test_pops_partition_the_fleet(self, fleet):
        members = [h for hosts in fleet.pops.values() for h in hosts]
        assert sorted(members) == sorted(fleet.routers)

    def test_internal_graph_connected(self, fleet):
        graph = nx.Graph(fleet.internal_graph())
        assert nx.is_connected(graph)

    def test_redundancy_for_sleeping(self, fleet):
        # The fleet must have sleepable slack: strictly more internal
        # links than a spanning tree needs.
        assert len(fleet.internal_links()) > len(fleet.routers) + 20

    def test_internal_links_are_cabled_and_up(self, fleet):
        for link in fleet.internal_links()[:50]:
            port_a = fleet.port_of(link.a)
            port_b = fleet.port_of(link.b)
            assert port_a.link_up and port_b.link_up
            assert port_a.peer is port_b

    def test_external_links_are_up_with_stub_peer(self, fleet):
        for link in fleet.external_links()[:50]:
            port = fleet.port_of(link.a)
            assert link.b is None
            assert port.link_up
            assert link.peer_name

    def test_speeds_match_port_capabilities(self, fleet):
        for link in fleet.links:
            port = fleet.port_of(link.a)
            assert link.speed_gbps <= port.port_type.max_speed_gbps
            assert port.speed_gbps == pytest.approx(link.speed_gbps)


class TestCalibration:
    """The Fig. 1 / Table 1 / §7-§8 aggregate targets."""

    def test_total_power_near_fig1(self, fleet):
        total = fleet.total_wall_power_w()
        assert 19_000 < total < 25_000  # paper: ≈21.7 kW

    def test_external_interface_share_near_half(self, fleet):
        stats = fleet.interface_stats()
        share = stats["external_interfaces"] / stats["total_interfaces"]
        assert 0.40 < share < 0.70  # paper: 51 %

    def test_transceiver_share_of_total_power(self, fleet):
        total = fleet.total_wall_power_w()
        trx = 0.0
        for router in fleet.routers.values():
            for port in router.ports:
                truth = port.class_truth()
                if truth is not None:
                    trx += truth.p_trx_in_w
                    if port.link_up:
                        trx += truth.p_trx_up_w
        assert 0.05 < trx / total < 0.15  # paper: ≈10 %

    def test_table1_medians_reproduced(self, fleet):
        from collections import defaultdict
        by_model = defaultdict(list)
        for router in fleet.routers.values():
            by_model[router.model_name].append(
                router.wall_power_w(include_noise=False))
        for model, target in TABLE1_MEASURED_MEDIAN_W.items():
            median = float(np.median(by_model[model]))
            assert median == pytest.approx(target, rel=0.10), model

    def test_spare_modules_exist(self, fleet):
        spares = [
            port
            for router in fleet.routers.values()
            for port in router.ports
            if port.plugged and not port.admin_up
        ]
        assert len(spares) >= 5  # §6.2's spare-transceiver phenomenon


class TestConfigValidation:
    def test_unknown_model_rejected(self):
        config = FleetConfig(model_counts=(("IMAGINARY-9000", 3),))
        with pytest.raises(ValueError, match="unknown router models"):
            build_switch_like_network(config)

    def test_custom_small_fleet(self, small_fleet):
        assert len(small_fleet.routers) == 18
        assert nx.is_connected(nx.Graph(small_fleet.internal_graph()))

    def test_router_lookup_error(self, small_fleet):
        with pytest.raises(KeyError, match="unknown router"):
            small_fleet.router("nope")


class TestGraphViews:
    def test_exclude_removes_edges(self, fleet):
        link = fleet.internal_links()[0]
        full = fleet.internal_graph()
        reduced = fleet.internal_graph(exclude=[link.link_id])
        assert full.number_of_edges() - reduced.number_of_edges() == 1

    def test_capacity_positive(self, fleet):
        assert fleet.total_capacity_bps() > 1e12


class TestPopViews:
    def test_pop_power_sums_to_total(self, fleet):
        per_pop = fleet.pop_power_w()
        total = fleet.total_wall_power_w()
        assert sum(per_pop.values()) == pytest.approx(total, rel=0.02)
        assert set(per_pop) == set(fleet.pops)

    def test_core_pops_are_heavy(self, fleet):
        per_pop = fleet.pop_power_w()
        core = per_pop["pop-core-a"] + per_pop["pop-core-b"]
        regional_mean = np.mean([p for name, p in per_pop.items()
                                 if name.startswith("pop-r")])
        # Six core routers per site vs a handful of access boxes.
        assert core / 2 > regional_mean

    def test_pop_of(self, fleet):
        host = sorted(fleet.routers)[0]
        pop = fleet.pop_of(host)
        assert host in fleet.pops[pop]
        with pytest.raises(KeyError, match="not placed"):
            fleet.pop_of("ghost")
