"""The sweep subsystem: matrix expansion, determinism, sharding, resume.

The headline contract under test: a sweep report is a pure function of
``(matrix, root_seed, engine)`` -- worker count, sharding, resume
boundaries, and completion order must never change a byte.
"""

import json

import pytest

from repro.obs import metrics, tracing
from repro.sweep import (
    JobSpec,
    MATRIX_PRESETS,
    ScenarioMatrix,
    default_bench_output,
    expand,
    parse_shard,
    run_job,
    run_sweep,
    shard_jobs,
)

#: Small enough to keep the multiprocess tests quick (8 steps per job).
FAST = ScenarioMatrix(
    topologies=("tiny",), traffics=("quiet", "busy"),
    sleeps=("none", "hypnos-50"), psus=("balanced",),
    duration_s=2 * 3600.0, step_s=900.0)


class TestMatrix:
    def test_expand_covers_the_cross_product(self):
        matrix = ScenarioMatrix(
            topologies=("tiny", "small"), traffics=("quiet",),
            sleeps=("none", "hypnos-50"), psus=("balanced", "single"))
        jobs = expand(matrix)
        assert len(jobs) == matrix.n_jobs == 8
        assert len({job.key for job in jobs}) == 8
        assert jobs[0].key == "tiny/quiet/none/balanced"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown traffics"):
            ScenarioMatrix(traffics=("rush-hour",))

    def test_duplicate_axis_entry_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioMatrix(sleeps=("none", "none"))

    def test_dict_round_trip(self):
        matrix = MATRIX_PRESETS["sleep-policy"]
        assert ScenarioMatrix.from_dict(matrix.to_dict()) == matrix

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown matrix key"):
            ScenarioMatrix.from_dict({"topologies": ["tiny"],
                                      "workers": 4})

    def test_presets_expand(self):
        for name, matrix in MATRIX_PRESETS.items():
            assert len(expand(matrix)) == matrix.n_jobs, name


class TestSeeding:
    def test_seed_depends_only_on_key_and_root(self):
        a = JobSpec("tiny", "quiet", "none", "balanced", 3600.0, 900.0)
        b = JobSpec("tiny", "quiet", "none", "balanced", 7200.0, 300.0)
        assert a.seed(7) == b.seed(7)        # duration is not identity
        assert a.seed(7) != a.seed(8)        # root seed matters

    def test_seed_is_process_stable(self):
        # A fixed value pins the derivation across platforms and Python
        # versions -- the cross-process determinism guarantee depends
        # on it (builtin hash() would be salted per process).
        spec = JobSpec("tiny", "quiet", "none", "balanced", 3600.0, 900.0)
        assert spec.seed(7) == 243662070641855988

    def test_distinct_jobs_get_distinct_seeds(self):
        jobs = expand(MATRIX_PRESETS["psu"])
        seeds = {job.seed(7) for job in jobs}
        assert len(seeds) == len(jobs)


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("4/4", "-1/4", "1", "a/b", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_job_list(self):
        jobs = expand(MATRIX_PRESETS["psu"])
        pieces = [shard_jobs(jobs, i, 5) for i in range(5)]
        seen = [job.key for piece in pieces for job in piece]
        assert sorted(seen) == sorted(job.key for job in jobs)
        assert len(seen) == len(set(seen))


class TestDeterminism:
    def test_worker_count_never_changes_a_byte(self, tmp_path):
        paths = {n: tmp_path / f"w{n}.json" for n in (1, 2, 4)}
        for n, path in paths.items():
            run_sweep(FAST, root_seed=7, workers=n, output=path)
        w1 = paths[1].read_bytes()
        assert paths[2].read_bytes() == w1
        assert paths[4].read_bytes() == w1

    def test_resume_converges_on_the_full_report(self, tmp_path):
        full = tmp_path / "full.json"
        run_sweep(FAST, root_seed=7, workers=1, output=full)
        # Run one shard first, then resume the whole matrix into it.
        partial = tmp_path / "partial.json"
        jobs = expand(FAST)
        run_sweep(FAST, root_seed=7, workers=2,
                  jobs=shard_jobs(jobs, 0, 2), output=partial)
        assert len(json.loads(partial.read_text())["jobs"]) == 2
        run_sweep(FAST, root_seed=7, workers=2, resume=True,
                  output=partial)
        assert partial.read_bytes() == full.read_bytes()

    def test_resume_rejects_a_different_sweep(self, tmp_path):
        output = tmp_path / "sweep.json"
        run_sweep(FAST, root_seed=7, workers=1, output=output)
        with pytest.raises(ValueError, match="cannot resume"):
            run_sweep(FAST, root_seed=8, workers=1, resume=True,
                      output=output)

    def test_run_job_engines_agree_on_aggregates(self):
        spec = JobSpec("tiny", "quiet", "hypnos-50", "balanced",
                       2 * 3600.0, 900.0)
        vector, _ = run_job(spec, root_seed=7, engine="vector")
        objekt, _ = run_job(spec, root_seed=7, engine="object")
        assert vector["run"]["engine"] == "vector"
        assert objekt["run"]["engine"] == "object"
        assert vector["aggregates"]["mean_power_w"] == pytest.approx(
            objekt["aggregates"]["mean_power_w"], rel=1e-6)
        assert vector["seed"] == objekt["seed"]

    def test_topo_xl_preset_runs_a_generated_fleet(self):
        jobs = expand(MATRIX_PRESETS["topo-xl"])
        assert [j.topology for j in jobs] == ["synth-1k"]
        entry, bench_row = run_job(jobs[0], root_seed=7, engine="vector")
        assert entry["fleet"]["routers"] >= 1000
        assert entry["aggregates"]["mean_power_w"] > 0
        assert bench_row["vector"]["wall_s"] > 0


class TestBenchRows:
    def test_timing_rows_live_outside_the_report(self, tmp_path):
        output = tmp_path / "sweep.json"
        run_sweep(FAST, root_seed=7, workers=1, output=output)
        report = json.loads(output.read_text())
        assert "wall_s" not in json.dumps(report)
        rows = json.loads(default_bench_output(output).read_text())
        assert rows["schema"] == "repro.bench.simulation/v6"
        assert len(rows["cases"]) == FAST.n_jobs
        by_name = {case["name"]: case for case in rows["cases"]}
        for job in report["jobs"]:
            case = by_name[job["key"]]
            engine = job["run"]["engine"]
            assert case[engine]["wall_s"] >= 0
            assert case["seed"] == job["seed"]


class TestTraceStitching:
    """Worker span trees are stitched into one deterministic trace."""

    @staticmethod
    def _normalized(doc):
        """The trace document minus its wall-clock measurements.

        Span structure, names, attributes, sim-clock fields, process
        labels, and subtrace order are the deterministic contract;
        ``start_s``/``duration_s`` and the workers' OS pids are not.
        """
        def strip_span(span):
            span = {key: value for key, value in span.items()
                    if key not in ("start_s", "duration_s")}
            if "children" in span:
                span["children"] = [strip_span(child)
                                    for child in span["children"]]
            return span

        doc = dict(doc)
        doc["spans"] = [strip_span(span) for span in doc["spans"]]
        subtraces = []
        for sub in doc.get("subtraces", ()):
            sub = dict(sub)
            sub["spans"] = [strip_span(span) for span in sub["spans"]]
            process = dict(sub.get("process", {}))
            process.pop("os_pid", None)
            sub["process"] = process
            subtraces.append(sub)
        if subtraces:
            doc["subtraces"] = subtraces
        return doc

    def test_stitched_trace_invariant_to_worker_count(self, tmp_path):
        docs = {}
        for n in (1, 4):
            tracer = tracing.Tracer()
            with tracing.use_tracer(tracer):
                run_sweep(FAST, root_seed=7, workers=n,
                          output=tmp_path / f"w{n}.json")
            docs[n] = self._normalized(tracer.to_dict())
        assert docs[1] == docs[4]

    def test_subtraces_carry_job_and_trace_id(self, tmp_path):
        tracer = tracing.Tracer()
        with tracing.use_tracer(tracer):
            run_sweep(FAST, root_seed=7, workers=2,
                      output=tmp_path / "sweep.json")
        doc = tracer.to_dict()
        assert doc["trace_id"] == "sweep-7"
        assert [sub["process"]["job"] for sub in doc["subtraces"]] == \
            sorted(job.key for job in expand(FAST))
        for sub in doc["subtraces"]:
            assert sub["schema"] == tracing.TRACE_SCHEMA
            assert sub["trace_id"] == "sweep-7"
            assert "os_pid" in sub["process"]
            assert [span["name"] for span in sub["spans"]] == ["sweep.job"]

    def test_no_subtraces_without_a_tracer(self, tmp_path):
        run_sweep(FAST, root_seed=7, workers=2,
                  output=tmp_path / "sweep.json")
        assert tracing.get_tracer() is None


class TestMetricsState:
    def test_snapshot_merge_round_trip(self):
        a = metrics.MetricsRegistry()
        a.counter("t_total", "a counter", labels=("k",)).labels(
            k="x").inc(3)
        a.gauge("t_gauge", "a gauge").default().set(5)
        a.histogram("t_hist", "a histogram",
                    buckets=(1, 10)).default().observe(4)

        b = metrics.MetricsRegistry()
        b.counter("t_total", "a counter", labels=("k",)).labels(
            k="x").inc(2)
        b.merge_state(a.snapshot_state())
        state = b.snapshot_state()
        families = state["families"]
        assert families["t_total"]["samples"][0]["value"] == 5
        assert families["t_gauge"]["samples"][0]["value"] == 5
        [hist] = families["t_hist"]["samples"]
        assert hist["count"] == 1 and hist["sum"] == 4

    def test_from_state_restores(self):
        a = metrics.MetricsRegistry()
        a.counter("t_total", "a counter").default().inc(7)
        b = metrics.MetricsRegistry.from_state(a.snapshot_state())
        assert b.snapshot_state() == a.snapshot_state()

    def test_merge_rejects_unknown_schema(self):
        registry = metrics.MetricsRegistry()
        with pytest.raises(ValueError):
            registry.merge_state({"schema": "bogus/v9", "families": {}})

    def test_sweep_merges_worker_metrics_into_parent(self, tmp_path):
        with metrics.use_registry(metrics.MetricsRegistry()) as registry:
            run_sweep(FAST, root_seed=7, workers=2,
                      output=tmp_path / "sweep.json")
            state = registry.snapshot_state()
        jobs_total = state["families"]["netpower_sweep_jobs_total"]
        by_status = {tuple(s["labels"]): s["value"]
                     for s in jobs_total["samples"]}
        assert by_status[("ok",)] == FAST.n_jobs
        # Worker-side instruments crossed the process boundary.
        sim_steps = state["families"]["netpower_sim_steps_total"]
        assert sum(s["value"] for s in sim_steps["samples"]) > 0


class TestCli:
    def test_sweep_smoke(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "sweep.json"
        code = main(["sweep", "--preset", "demo", "--workers", "2",
                     "--output", str(output)])
        out = capsys.readouterr().out
        assert code == 0
        assert "jobs in report     : 4/4" in out
        assert json.loads(output.read_text())["schema"] == "repro.sweep/v1"

    def test_shard_then_resume_matches_serial(self, tmp_path, capsys):
        from repro.cli import main

        serial = tmp_path / "serial.json"
        sharded = tmp_path / "sharded.json"
        assert main(["sweep", "--preset", "demo",
                     "--output", str(serial)]) == 0
        for shard in ("1/2", "0/2"):
            assert main(["sweep", "--preset", "demo", "--shard", shard,
                         "--resume", "--output", str(sharded)]) == 0
        capsys.readouterr()
        assert sharded.read_bytes() == serial.read_bytes()

    def test_bad_arguments_fail_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "--preset", "nope"]) == 2
        assert main(["sweep", "--shard", "9/3"]) == 2
        assert main(["sweep", "--preset", "demo", "--matrix",
                     "matrix.json"]) == 2
        assert main(["sweep", "--workers", "0"]) == 2
        capsys.readouterr()

    def test_matrix_file(self, tmp_path, capsys):
        from repro.cli import main

        matrix_path = tmp_path / "matrix.json"
        matrix_path.write_text(json.dumps({
            "topologies": ["tiny"], "traffics": ["quiet"],
            "sleeps": ["none"], "psus": ["balanced", "single"],
            "duration_s": 3600.0, "step_s": 900.0}))
        output = tmp_path / "sweep.json"
        code = main(["sweep", "--matrix", str(matrix_path),
                     "--output", str(output)])
        capsys.readouterr()
        assert code == 0
        report = json.loads(output.read_text())
        assert [job["key"] for job in report["jobs"]] == [
            "tiny/quiet/none/balanced", "tiny/quiet/none/single"]
