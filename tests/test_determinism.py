"""Determinism: every pipeline is exactly reproducible from its seeds.

The paper's artifact-evaluation promise ("all the data and software
required to replicate the analyses") only holds if reruns agree; these
tests pin that down for each major pipeline.
"""

import numpy as np
import pytest

from repro import units
from repro.core import derive_power_model
from repro.hardware import VirtualRouter, router_spec
from repro.lab import ExperimentPlan, Orchestrator
from repro.network import (
    FleetConfig,
    FleetTrafficModel,
    NetworkSimulation,
    build_switch_like_network,
)


def quick_plan():
    return ExperimentPlan(trx_name="QSFP28-100G-DAC",
                          n_pairs_values=(1, 2, 4),
                          rates_gbps=(10, 50, 100), packet_sizes=(256, 1500),
                          measure_duration_s=10, settle_time_s=1)


def derive_once(seed):
    rng = np.random.default_rng(seed)
    dut = VirtualRouter(router_spec("NCS-55A1-24H"), rng=rng,
                        noise_std_w=0.2)
    orchestrator = Orchestrator(dut, rng=rng)
    model, _ = derive_power_model([orchestrator.run_suite(quick_plan())])
    return model


class TestDerivationDeterminism:
    def test_same_seed_same_model(self):
        a = derive_once(9)
        b = derive_once(9)
        assert a.p_base_w.value == b.p_base_w.value
        iface_a = next(iter(a.interfaces.values()))
        iface_b = next(iter(b.interfaces.values()))
        assert iface_a.e_bit_pj.value == iface_b.e_bit_pj.value
        assert iface_a.p_offset_w.value == iface_b.p_offset_w.value

    def test_different_seed_different_noise(self):
        a = derive_once(9)
        b = derive_once(10)
        # Same truth underneath, different measurement noise on top.
        assert a.p_base_w.value != b.p_base_w.value
        assert a.p_base_w.value == pytest.approx(b.p_base_w.value,
                                                 rel=0.10)


class TestFleetDeterminism:
    def _run(self, seed):
        config = FleetConfig(
            model_counts=(("NCS-55A1-24H", 2), ("ASR-920-24SZ-M", 4)),
            n_regional_pops=2, core_core_links=1)
        network = build_switch_like_network(
            config, rng=np.random.default_rng(seed))
        traffic = FleetTrafficModel(network,
                                    rng=np.random.default_rng(seed + 1),
                                    n_demands=40)
        sim = NetworkSimulation(network, traffic,
                                rng=np.random.default_rng(seed + 2))
        return sim.run(duration_s=units.hours(3), step_s=900)

    def test_identical_simulations(self):
        a = self._run(33)
        b = self._run(33)
        np.testing.assert_array_equal(a.total_power.values,
                                      b.total_power.values)
        np.testing.assert_array_equal(a.total_traffic_bps.values,
                                      b.total_traffic_bps.values)
        host = sorted(a.snmp)[0]
        np.testing.assert_array_equal(a.snmp[host].power.values,
                                      b.snmp[host].power.values)

    def test_topology_identical(self):
        config = FleetConfig(
            model_counts=(("NCS-55A1-24H", 2), ("ASR-920-24SZ-M", 4)),
            n_regional_pops=2, core_core_links=1)
        a = build_switch_like_network(config, np.random.default_rng(5))
        b = build_switch_like_network(config, np.random.default_rng(5))
        assert [(l.kind, l.speed_gbps, l.a.hostname, l.a.port_index)
                for l in a.links] \
            == [(l.kind, l.speed_gbps, l.a.hostname, l.a.port_index)
                for l in b.links]
        for host in a.routers:
            assert a.routers[host].inventory() == b.routers[host].inventory()


class TestCorpusDeterminism:
    def test_corpus_and_parse_stable(self):
        from repro.datasheets import build_corpus, parse_corpus
        a = parse_corpus(build_corpus(50, np.random.default_rng(2)))
        b = parse_corpus(build_corpus(50, np.random.default_rng(2)))
        assert set(a) == set(b)
        for model in a:
            assert a[model].typical_w == b[model].typical_w
            assert a[model].max_bandwidth_gbps == b[model].max_bandwidth_gbps


class TestHypnosDeterminism:
    def test_plans_agree(self, small_fleet_config):
        def plan_once():
            network = build_switch_like_network(
                small_fleet_config, rng=np.random.default_rng(21))
            traffic = FleetTrafficModel(network,
                                        rng=np.random.default_rng(22),
                                        n_demands=100)
            from repro.sleep import Hypnos
            return Hypnos(network, traffic.matrix).plan_window(1.0)

        assert plan_once() == plan_once()
